//! Flat compressed-sparse-row adjacency — the shared simulation
//! substrate of the large-`n` fast-path engines.
//!
//! [`Graph`] already stores CSR internally, but with `usize` offsets and
//! a validating, edge-list-buffering builder that was designed for
//! correctness at experiment sizes, not for `n = 10⁶` construction.
//! [`Csr`] is the lean sibling, parameterized by the target word width
//! [`CsrWidth`]: [`CsrGraph`] (`Csr<u32>`) is the default every engine
//! consumes — `u32` ids address 4 × 10⁹ nodes, which covers the 10⁸
//! scale tier with room to spare — while [`CsrGraph64`] (`Csr<u64>`)
//! exists for adjacency volumes past `u32`. Both are built either
//! losslessly from a [`Graph`] (both directions preserve adjacency
//! exactly, `u32` only) or *directly* from an edge list by counting
//! sort — the path the scalable generators
//! ([`crate::generators::gnp_csr`] and friends) use to skip the
//! 16-byte-per-edge builder buffer and roughly halve peak build memory.
//!
//! Edge endpoints wider than the target word are a **typed error**
//! ([`CsrError::EndpointOverflow`]), never a silent truncation: the
//! width check runs before the range check, so a `u64` endpoint that
//! cannot fit the word is reported as exactly that.
//!
//! [`CsrTree`] is the BFS spanning structure the kernels share: the
//! level order of the source's component plus per-parent child lists in
//! one flat CSR, computed without touching nodes outside the component
//! (so disconnected graphs are fine — the almost-complete broadcast
//! regime).

use std::fmt;
use std::hash::Hash;

use crate::{Graph, NodeId};

/// The target word of a [`Csr`]: the integer type storing node ids and
/// row offsets. Implemented for `u32` (the default, via [`CsrGraph`])
/// and `u64` ([`CsrGraph64`]).
///
/// The all-ones value (`u32::MAX` / `u64::MAX`) is reserved as a
/// sentinel by the traversal kernels, so the largest usable node id or
/// adjacency length is `MAX_INDEX`.
pub trait CsrWidth: Copy + Ord + Eq + Hash + fmt::Debug + Send + Sync + 'static {
    /// Human-readable word name for error messages (`"u32"`).
    const NAME: &'static str;
    /// Largest usable index: one below the all-ones sentinel.
    const MAX_INDEX: u64;
    /// The zero word.
    const ZERO: Self;
    /// Converts from `u64`, `None` when the value doesn't fit the word.
    fn from_u64(x: u64) -> Option<Self>;
    /// Widens to `u64` (always exact).
    fn to_u64(self) -> u64;
    /// Narrow to `usize` for indexing (always exact on 64-bit hosts).
    fn to_usize(self) -> usize;
}

impl CsrWidth for u32 {
    const NAME: &'static str = "u32";
    const MAX_INDEX: u64 = (u32::MAX as u64) - 1;
    const ZERO: Self = 0;
    fn from_u64(x: u64) -> Option<Self> {
        u32::try_from(x).ok()
    }
    fn to_u64(self) -> u64 {
        u64::from(self)
    }
    fn to_usize(self) -> usize {
        self as usize
    }
}

impl CsrWidth for u64 {
    const NAME: &'static str = "u64";
    const MAX_INDEX: u64 = u64::MAX - 1;
    const ZERO: Self = 0;
    fn from_u64(x: u64) -> Option<Self> {
        Some(x)
    }
    fn to_u64(self) -> u64 {
        self
    }
    fn to_usize(self) -> usize {
        usize::try_from(self).expect("index exceeds usize")
    }
}

/// A typed rejection from the CSR builders.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CsrError {
    /// The graph would have no nodes.
    EmptyGraph,
    /// `n` does not fit the target word (ids `0..n` must be usable).
    TooManyNodes {
        /// Requested node count.
        n: u64,
        /// Largest usable index for the word.
        max: u64,
    },
    /// An edge endpoint does not fit the target word — the silent
    /// `u64 → u32` truncation this variant exists to prevent.
    EndpointOverflow {
        /// The offending endpoint value.
        endpoint: u64,
        /// Largest usable index for the word.
        max: u64,
    },
    /// An edge joins a node to itself.
    SelfLoop {
        /// The offending node.
        node: u64,
    },
    /// An edge endpoint is `>= n`.
    OutOfRange {
        /// The offending endpoint value.
        endpoint: u64,
        /// The node count it must stay below.
        n: u64,
    },
    /// The directed adjacency (2 entries per undirected edge) does not
    /// fit the target word's offset range.
    AdjacencyOverflow {
        /// Largest usable index for the word.
        max: u64,
    },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CsrError::EmptyGraph => write!(f, "graph must have at least one node"),
            CsrError::TooManyNodes { n, max } => {
                write!(f, "node count {n} exceeds the width's usable range ({max})")
            }
            CsrError::EndpointOverflow { endpoint, max } => write!(
                f,
                "edge endpoint {endpoint} exceeds the target word (max usable index {max})"
            ),
            CsrError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            CsrError::OutOfRange { endpoint, n } => {
                write!(f, "edge endpoint {endpoint} out of range (n = {n})")
            }
            CsrError::AdjacencyOverflow { max } => {
                write!(f, "adjacency exceeds the width's offset range ({max})")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// An undirected simple graph as flat CSR arrays over the word `W`.
///
/// Node ids are dense `0..n`; `targets[offsets[v]..offsets[v+1]]` are
/// `v`'s neighbors in ascending order. [`CsrGraph`] (`W = u32`) is the
/// width every engine consumes; see [`CsrWidth`] for the bounds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Csr<W: CsrWidth> {
    /// `n + 1` row boundaries into `targets`.
    offsets: Vec<W>,
    /// Concatenated sorted neighbor lists (each undirected edge appears
    /// twice).
    targets: Vec<W>,
}

/// The default `u32` CSR graph — the substrate of the fast-path
/// engines. `u32` ids and offsets bound it at ~4 × 10⁹ nodes and
/// adjacency entries, far beyond the 10⁸ scale tier.
pub type CsrGraph = Csr<u32>;

/// A `u64`-word CSR graph for adjacency volumes past `u32`.
pub type CsrGraph64 = Csr<u64>;

impl<W: CsrWidth> Csr<W> {
    /// Builds the CSR adjacency for the undirected simple graph on `n`
    /// nodes with the given edges, by counting sort: degree pass,
    /// prefix sums, scatter, then per-row sort + dedup. Duplicate edges
    /// merge; peak memory is the edge list plus the arrays themselves.
    ///
    /// # Panics
    ///
    /// Panics on any [`CsrError`] (see [`try_from_edges`](Self::try_from_edges)
    /// for the non-panicking entry point).
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(W, W)]) -> Self {
        Self::try_from_edges(n, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`from_edges`](Self::from_edges), rejecting invalid input with a
    /// typed [`CsrError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`CsrError`] on an empty graph, a node count or
    /// adjacency volume beyond the word, self-loops, or out-of-range
    /// endpoints.
    pub fn try_from_edges(n: usize, edges: &[(W, W)]) -> Result<Self, CsrError> {
        Self::build(n, || edges.iter().map(|&(u, v)| (u.to_u64(), v.to_u64())))
    }

    /// Builds from `(u64, u64)` edge runs — the streaming-generator
    /// format — rejecting endpoints that don't fit the target word with
    /// the typed [`CsrError::EndpointOverflow`] (**never** silently
    /// truncating). The width check runs before the range check, so an
    /// endpoint `>= u32::MAX` on a `u32` CSR reports as overflow even
    /// when it is also `>= n`.
    ///
    /// # Errors
    ///
    /// As [`try_from_edges`](Self::try_from_edges), plus
    /// [`CsrError::EndpointOverflow`].
    pub fn try_from_edges64(n: usize, edges: &[(u64, u64)]) -> Result<Self, CsrError> {
        Self::build(n, || edges.iter().copied())
    }

    /// The shared counting-sort builder: `runs()` must yield the same
    /// edge sequence on both passes (degree count, then scatter).
    fn build<I, F>(n: usize, runs: F) -> Result<Self, CsrError>
    where
        F: Fn() -> I,
        I: Iterator<Item = (u64, u64)>,
    {
        if n == 0 {
            return Err(CsrError::EmptyGraph);
        }
        let n64 = n as u64;
        if n64 > W::MAX_INDEX {
            return Err(CsrError::TooManyNodes {
                n: n64,
                max: W::MAX_INDEX,
            });
        }
        let check = |e: u64| -> Result<(), CsrError> {
            if e > W::MAX_INDEX {
                return Err(CsrError::EndpointOverflow {
                    endpoint: e,
                    max: W::MAX_INDEX,
                });
            }
            if e >= n64 {
                return Err(CsrError::OutOfRange {
                    endpoint: e,
                    n: n64,
                });
            }
            Ok(())
        };
        let mut degree = vec![0u64; n];
        for (u, v) in runs() {
            check(u)?;
            check(v)?;
            if u == v {
                return Err(CsrError::SelfLoop { node: u });
            }
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets: Vec<W> = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(W::ZERO);
        for &d in &degree {
            acc += d;
            if acc > W::MAX_INDEX {
                return Err(CsrError::AdjacencyOverflow { max: W::MAX_INDEX });
            }
            offsets.push(W::from_u64(acc).expect("checked against MAX_INDEX"));
        }
        drop(degree);
        let mut targets = vec![W::ZERO; acc as usize];
        let mut cursor: Vec<W> = offsets.clone();
        for (u, v) in runs() {
            let (u, v) = (u as usize, v as usize);
            let cu = cursor[u].to_usize();
            targets[cu] = W::from_u64(v as u64).expect("endpoint checked");
            cursor[u] = W::from_u64(cu as u64 + 1).expect("within adjacency");
            let cv = cursor[v].to_usize();
            targets[cv] = W::from_u64(u as u64).expect("endpoint checked");
            cursor[v] = W::from_u64(cv as u64 + 1).expect("within adjacency");
        }
        drop(cursor);
        // Sort each row, drop duplicate edges, and compact in place.
        let mut write = 0usize;
        let mut compact_offsets: Vec<W> = Vec::with_capacity(n + 1);
        compact_offsets.push(W::ZERO);
        for v in 0..n {
            let (start, end) = (offsets[v].to_usize(), offsets[v + 1].to_usize());
            targets[start..end].sort_unstable();
            let mut prev: Option<W> = None;
            for i in start..end {
                let t = targets[i];
                if prev != Some(t) {
                    targets[write] = t;
                    write += 1;
                    prev = Some(t);
                }
            }
            compact_offsets.push(W::from_u64(write as u64).expect("within adjacency"));
        }
        targets.truncate(write);
        Ok(Csr {
            offsets: compact_offsets,
            targets,
        })
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// The sorted neighbor list of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn neighbors_of(&self, v: usize) -> &[W] {
        &self.targets[self.offsets[v].to_usize()..self.offsets[v + 1].to_usize()]
    }

    /// The degree of node `v`.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors_of(v).len()
    }

    /// The row-boundary array (`n + 1` entries).
    #[must_use]
    pub fn offsets(&self) -> &[W] {
        &self.offsets
    }

    /// The concatenated neighbor lists.
    #[must_use]
    pub fn targets(&self) -> &[W] {
        &self.targets
    }

    /// Consumes the graph into its `(offsets, targets)` CSR arrays, so
    /// engines that own their adjacency can take it without copying.
    #[must_use]
    pub fn into_raw_parts(self) -> (Vec<W>, Vec<W>) {
        (self.offsets, self.targets)
    }
}

impl Csr<u32> {
    /// The BFS spanning structure rooted at `source`: level order and
    /// per-parent child lists over the source's component only, so the
    /// graph may be disconnected.
    ///
    /// # Panics
    ///
    /// Panics if `source >= n`.
    #[must_use]
    pub fn bfs_tree(&self, source: u32) -> CsrTree {
        let n = self.node_count();
        assert!((source as usize) < n, "source out of range");
        const UNSET: u32 = u32::MAX;
        let mut parent = vec![UNSET; n];
        let mut level = vec![0u32; n];
        let mut order: Vec<u32> = Vec::new();
        parent[source as usize] = source;
        order.push(source);
        let mut head = 0usize;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for &v in self.neighbors_of(u as usize) {
                if parent[v as usize] == UNSET {
                    parent[v as usize] = u;
                    level[v as usize] = level[u as usize] + 1;
                    order.push(v);
                }
            }
        }
        // The paper's enumeration `v1..vn`: nondecreasing level, ties
        // broken by node id (matching `SpanningTree::level_order`).
        order.sort_unstable_by_key(|&v| (level[v as usize], v));
        let mut degree = vec![0u32; n];
        for (v, &p) in parent.iter().enumerate() {
            if p != UNSET && p as usize != v {
                degree[p as usize] += 1;
            }
        }
        let mut child_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        child_offsets.push(0);
        for &d in &degree {
            acc += d;
            child_offsets.push(acc);
        }
        let mut children = vec![0u32; acc as usize];
        let mut cursor = child_offsets.clone();
        // Children in BFS-discovery order (== ascending node id per
        // parent, since neighbor rows are sorted).
        for &v in &order {
            let p = parent[v as usize];
            if p != v {
                children[cursor[p as usize] as usize] = v;
                cursor[p as usize] += 1;
            }
        }
        CsrTree {
            order,
            child_offsets,
            children,
        }
    }
}

impl From<&Graph> for CsrGraph {
    /// Lossless structural copy — [`Graph`] is CSR internally with the
    /// same sorted-row invariant, so no re-sorting happens.
    fn from(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0u32);
        for v in graph.nodes() {
            targets.extend(graph.neighbors(v).iter().map(|&t| u32::from(t)));
            let len = u32::try_from(targets.len()).expect("adjacency exceeds u32::MAX");
            offsets.push(len);
        }
        CsrGraph { offsets, targets }
    }
}

impl From<&CsrGraph> for Graph {
    /// Lossless widening copy: adjacency rows are already sorted and
    /// deduplicated, so the conversion is two linear passes.
    fn from(csr: &CsrGraph) -> Self {
        let offsets: Vec<usize> = csr.offsets.iter().map(|&o| o as usize).collect();
        let adjacency: Vec<NodeId> = csr.targets.iter().map(|&t| NodeId::from(t)).collect();
        let edge_count = csr.edge_count();
        Graph::from_csr_parts(offsets, adjacency, edge_count)
    }
}

/// The BFS spanning structure of one source component: the paper's
/// `v1..vn` level-order enumeration plus flat per-parent child lists —
/// everything the fast broadcast kernels need from a spanning tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CsrTree {
    /// The source component in the paper's enumeration order:
    /// nondecreasing BFS level, ties broken by node id (`order[0]` is
    /// the source). Nodes outside the component do not appear.
    order: Vec<u32>,
    /// `n + 1` row boundaries into `children`, indexed by graph node id.
    child_offsets: Vec<u32>,
    /// Concatenated child lists, ascending per parent.
    children: Vec<u32>,
}

impl CsrTree {
    /// The source component in nondecreasing-level order (ties by node
    /// id) — the paper's `v1..vn` enumeration restricted to reachable
    /// nodes.
    #[must_use]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Number of nodes reachable from the source (component size).
    #[must_use]
    pub fn component_size(&self) -> usize {
        self.order.len()
    }

    /// The children of node `v` (empty for leaves and for nodes outside
    /// the source's component).
    #[must_use]
    pub fn children_of(&self, v: usize) -> &[u32] {
        &self.children[self.child_offsets[v] as usize..self.child_offsets[v + 1] as usize]
    }

    /// Consumes the tree into its `(child_offsets, children)` CSR
    /// arrays — the transmission-target structure of tree-based
    /// broadcast kernels.
    #[must_use]
    pub fn into_children_csr(self) -> (Vec<u32>, Vec<u32>) {
        (self.child_offsets, self.children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, SpanningTree};

    #[test]
    fn from_edges_sorts_and_merges_duplicates() {
        let csr = CsrGraph::from_edges(4, &[(2, 0), (0, 1), (1, 0), (3, 1), (0, 2)]);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 3);
        assert_eq!(csr.neighbors_of(0), &[1, 2]);
        assert_eq!(csr.neighbors_of(1), &[0, 3]);
        assert_eq!(csr.neighbors_of(2), &[0]);
        assert_eq!(csr.neighbors_of(3), &[1]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_edges_rejects_self_loops() {
        let _ = CsrGraph::from_edges(3, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range() {
        let _ = CsrGraph::from_edges(3, &[(0, 3)]);
    }

    #[test]
    fn try_from_edges_reports_typed_errors() {
        assert_eq!(CsrGraph::try_from_edges(0, &[]), Err(CsrError::EmptyGraph));
        assert_eq!(
            CsrGraph::try_from_edges(3, &[(2, 2)]),
            Err(CsrError::SelfLoop { node: 2 })
        );
        assert_eq!(
            CsrGraph::try_from_edges(3, &[(0, 7)]),
            Err(CsrError::OutOfRange { endpoint: 7, n: 3 })
        );
    }

    /// The satellite boundary: a `u64` endpoint at or past the `u32`
    /// sentinel must come back as the typed overflow — checked *before*
    /// the range check, so it can never be mistaken for (or silently
    /// truncated into) an in-range id.
    #[test]
    fn u64_endpoints_past_the_u32_word_are_typed_overflow() {
        let max = (u32::MAX as u64) - 1;
        for endpoint in [u32::MAX as u64, u32::MAX as u64 + 1, 1u64 << 40, u64::MAX] {
            assert_eq!(
                CsrGraph::try_from_edges64(10, &[(0, endpoint)]),
                Err(CsrError::EndpointOverflow { endpoint, max }),
                "endpoint {endpoint}"
            );
            // Symmetric in the first endpoint.
            assert_eq!(
                CsrGraph::try_from_edges64(10, &[(endpoint, 0)]),
                Err(CsrError::EndpointOverflow { endpoint, max }),
            );
        }
        // One below the sentinel fits the word, so the *range* check
        // fires instead — proving the width gate sits in front.
        let below = (u32::MAX as u64) - 1;
        assert_eq!(
            CsrGraph::try_from_edges64(10, &[(0, below)]),
            Err(CsrError::OutOfRange {
                endpoint: below,
                n: 10
            })
        );
        // The same endpoints are fine for the u64 word (range aside).
        assert_eq!(
            CsrGraph64::try_from_edges64(10, &[(0, u32::MAX as u64)]),
            Err(CsrError::OutOfRange {
                endpoint: u32::MAX as u64,
                n: 10
            })
        );
    }

    #[test]
    fn u64_runs_match_u32_from_edges() {
        let edges32: Vec<(u32, u32)> = vec![(2, 0), (0, 1), (1, 0), (3, 1), (0, 2)];
        let edges64: Vec<(u64, u64)> = edges32.iter().map(|&(u, v)| (u as u64, v as u64)).collect();
        assert_eq!(
            CsrGraph::from_edges(4, &edges32),
            CsrGraph::try_from_edges64(4, &edges64).expect("in range")
        );
    }

    #[test]
    fn u64_width_builds_and_reads_back() {
        let csr =
            CsrGraph64::try_from_edges64(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).expect("valid");
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.neighbors_of(0), &[1, 3]);
        assert_eq!(csr.neighbors_of(3), &[0, 2]);
        let (offsets, targets) = csr.into_raw_parts();
        assert_eq!(offsets.len(), 5);
        assert_eq!(targets.len(), 8);
    }

    #[test]
    fn graph_round_trip_preserves_adjacency() {
        for g in [
            generators::grid(5, 7),
            generators::star(9),
            generators::lower_bound_graph(4),
            generators::path(0),
        ] {
            let csr = CsrGraph::from(&g);
            assert_eq!(csr.node_count(), g.node_count());
            assert_eq!(csr.edge_count(), g.edge_count());
            for v in g.nodes() {
                let expect: Vec<u32> = g.neighbors(v).iter().map(|&t| u32::from(t)).collect();
                assert_eq!(csr.neighbors_of(v.index()), expect.as_slice());
            }
            let back = Graph::from(&csr);
            assert_eq!(back, g, "round trip must be lossless");
        }
    }

    #[test]
    fn bfs_tree_matches_spanning_tree() {
        let g = generators::grid(4, 6);
        let csr = CsrGraph::from(&g);
        let tree = csr.bfs_tree(0);
        let reference = SpanningTree::bfs(&g, g.node(0));
        let ref_order: Vec<u32> = reference
            .level_order()
            .iter()
            .map(|&v| u32::from(v))
            .collect();
        assert_eq!(tree.order(), ref_order.as_slice());
        assert_eq!(tree.component_size(), g.node_count());
        for v in g.nodes() {
            let expect: Vec<u32> = reference
                .children(v)
                .iter()
                .map(|&c| u32::from(c))
                .collect();
            assert_eq!(tree.children_of(v.index()), expect.as_slice(), "{v}");
        }
    }

    #[test]
    fn bfs_tree_covers_only_the_source_component() {
        // Triangle {0,1,2} plus the far edge {3,4}.
        let csr = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        let tree = csr.bfs_tree(0);
        assert_eq!(tree.component_size(), 3);
        assert_eq!(tree.order(), &[0, 1, 2]);
        assert_eq!(tree.children_of(0), &[1, 2]);
        assert!(tree.children_of(3).is_empty());
        let far = csr.bfs_tree(3);
        assert_eq!(far.order(), &[3, 4]);
        assert_eq!(far.children_of(3), &[4]);
        let (offsets, children) = far.into_children_csr();
        assert_eq!(offsets.len(), 6);
        assert_eq!(children, vec![4]);
    }

    #[test]
    fn single_node_graph() {
        let csr = CsrGraph::from_edges(1, &[]);
        assert_eq!(csr.node_count(), 1);
        assert_eq!(csr.edge_count(), 0);
        assert!(csr.neighbors_of(0).is_empty());
        let tree = csr.bfs_tree(0);
        assert_eq!(tree.component_size(), 1);
    }
}
