//! Property-based tests for graph invariants.

use proptest::prelude::*;
use randcast_graph::{generators, traversal, CsrGraph, Graph, GraphBuilder, NodeId, SpanningTree};

/// Strategy: a random connected graph as (n, extra edge pairs).
fn connected_graph() -> impl Strategy<Value = randcast_graph::Graph> {
    (
        2usize..40,
        proptest::collection::vec((0usize..40, 0usize..40), 0..60),
    )
        .prop_map(|(n, extra)| {
            let mut b = GraphBuilder::new(n);
            // Recursive-tree skeleton keeps it connected and deterministic.
            for v in 1..n {
                b.edge((v * 7 + 3) % v, v);
            }
            for (u, v) in extra {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.edge(u, v);
                }
            }
            b.finish().expect("valid construction")
        })
}

proptest! {
    #[test]
    fn degree_sum_is_twice_edge_count(g in connected_graph()) {
        let sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.edge_count());
    }

    #[test]
    fn neighbors_are_sorted_and_unique(g in connected_graph()) {
        for v in g.nodes() {
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric(g in connected_graph()) {
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn bfs_distances_are_consistent(g in connected_graph()) {
        let d = traversal::bfs_distances(&g, g.node(0));
        prop_assert_eq!(d[0], 0);
        // Edge endpoints differ by at most one level.
        for (u, v) in g.edges() {
            let (du, dv) = (d[u.index()], d[v.index()]);
            prop_assert!(du.abs_diff(dv) <= 1, "edge {}-{}", u, v);
        }
        // Every non-source node has a strictly closer neighbor.
        for v in g.nodes().skip(1) {
            prop_assert!(g
                .neighbors(v)
                .iter()
                .any(|u| d[u.index()] + 1 == d[v.index()]));
        }
    }

    #[test]
    fn radius_equals_max_distance(g in connected_graph()) {
        let d = traversal::bfs_distances(&g, g.node(0));
        let r = traversal::radius_from(&g, g.node(0));
        prop_assert_eq!(r, d.iter().copied().max().unwrap());
    }

    #[test]
    fn bfs_tree_matches_bfs_levels(g in connected_graph()) {
        let t = SpanningTree::bfs(&g, g.node(0));
        let d = traversal::bfs_distances(&g, g.node(0));
        for v in g.nodes() {
            prop_assert_eq!(t.level(v), d[v.index()]);
            if let Some(p) = t.parent(v) {
                prop_assert!(g.has_edge(p, v));
                prop_assert_eq!(t.level(p) + 1, t.level(v));
            } else {
                prop_assert_eq!(v, g.node(0));
            }
        }
        prop_assert_eq!(t.depth(), traversal::radius_from(&g, g.node(0)));
    }

    #[test]
    fn tree_children_are_inverse_of_parent(g in connected_graph()) {
        let t = SpanningTree::bfs(&g, g.node(0));
        let mut child_count = 0usize;
        for v in g.nodes() {
            for &c in t.children(v) {
                prop_assert_eq!(t.parent(c), Some(v));
                child_count += 1;
            }
        }
        // Every node except the root is someone's child exactly once.
        prop_assert_eq!(child_count, g.node_count() - 1);
    }

    #[test]
    fn level_order_is_sorted_by_level(g in connected_graph()) {
        let t = SpanningTree::bfs(&g, g.node(0));
        let order = t.level_order();
        prop_assert_eq!(order.len(), g.node_count());
        for w in order.windows(2) {
            prop_assert!(t.level(w[0]) <= t.level(w[1]));
        }
        prop_assert_eq!(order[0], g.node(0));
    }

    #[test]
    fn branches_partition_leaves(g in connected_graph()) {
        let t = SpanningTree::bfs(&g, g.node(0));
        let branches = t.branches();
        let mut leaf_ends: Vec<NodeId> =
            branches.iter().map(|b| *b.last().unwrap()).collect();
        leaf_ends.sort();
        leaf_ends.dedup();
        let mut leaves: Vec<NodeId> = g.nodes().filter(|&v| t.is_leaf(v)).collect();
        leaves.sort();
        prop_assert_eq!(leaf_ends, leaves);
        for b in &branches {
            prop_assert!(b.len() <= t.depth() + 1);
        }
    }

    #[test]
    fn random_tree_has_tree_shape(n in 1usize..200, seed in any::<u64>()) {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n - 1);
        prop_assert!(traversal::is_connected(&g));
    }

    #[test]
    fn gnp_connected_is_connected(n in 2usize..60, q in 0.0f64..0.3, seed in any::<u64>()) {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, q, &mut rng);
        prop_assert!(traversal::is_connected(&g));
    }

    #[test]
    fn lower_bound_graph_degrees(m in 1usize..10) {
        let g = generators::lower_bound_graph(m);
        // Layer-3 node with value v has degree = popcount(v).
        for value in 1usize..(1 << m) {
            let node = generators::lb::value_node(m, value);
            prop_assert_eq!(g.degree(node), value.count_ones() as usize);
        }
    }

    #[test]
    fn gnp_is_deterministic_and_bounded(n in 1usize..80, q in 0.0f64..=1.0, seed in any::<u64>()) {
        use rand::SeedableRng as _;
        let build = || {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            generators::gnp(n, q, &mut rng)
        };
        let g = build();
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.edge_count() <= n * (n - 1) / 2);
        // Determinism per seed: identical adjacency.
        let h = build();
        for v in g.nodes() {
            prop_assert_eq!(g.neighbors(v), h.neighbors(v));
        }
    }

    #[test]
    fn random_geometric_is_deterministic_and_simple(
        n in 1usize..80,
        radius in 0.01f64..0.7,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng as _;
        let build = || {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            generators::random_geometric(n, radius, &mut rng)
        };
        let g = build();
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.max_degree() < n);
        let h = build();
        for v in g.nodes() {
            prop_assert_eq!(g.neighbors(v), h.neighbors(v));
        }
    }

    #[test]
    fn preferential_attachment_invariants(
        n in 1usize..150,
        m in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng as _;
        let build = || {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            generators::preferential_attachment(n, m, &mut rng)
        };
        let g = build();
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(traversal::is_connected(&g));
        // Node v contributes exactly min(m, v) distinct edges, so both
        // the total and the per-node degree floor are exact.
        let expected: usize = (1..n).map(|v| m.min(v)).sum();
        prop_assert_eq!(g.edge_count(), expected);
        for v in 1..n {
            prop_assert!(g.degree(g.node(v)) >= m.min(v));
        }
        let h = build();
        for v in g.nodes() {
            prop_assert_eq!(g.neighbors(v), h.neighbors(v));
        }
    }

    #[test]
    fn csr_round_trip_preserves_adjacency(g in connected_graph()) {
        // Graph → CsrGraph → Graph must be lossless on arbitrary graphs.
        let csr = CsrGraph::from(&g);
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.nodes() {
            let expect: Vec<u32> = g.neighbors(v).iter().map(|&t| u32::from(t)).collect();
            prop_assert_eq!(csr.neighbors_of(v.index()), expect.as_slice());
        }
        let back = Graph::from(&csr);
        prop_assert_eq!(back, g);
    }

    #[test]
    fn csr_bfs_tree_matches_spanning_tree(g in connected_graph()) {
        let csr = CsrGraph::from(&g);
        let tree = csr.bfs_tree(0);
        let reference = SpanningTree::bfs(&g, g.node(0));
        let ref_order: Vec<u32> =
            reference.level_order().iter().map(|&v| u32::from(v)).collect();
        prop_assert_eq!(tree.order(), ref_order.as_slice());
        for v in g.nodes() {
            let expect: Vec<u32> =
                reference.children(v).iter().map(|&c| u32::from(c)).collect();
            prop_assert_eq!(tree.children_of(v.index()), expect.as_slice());
        }
    }

    #[test]
    fn random_connected_edge_count_is_exact(
        n in 2usize..40,
        extra_frac in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng as _;
        let capacity = n * (n - 1) / 2 - (n - 1);
        let extra = (extra_frac * capacity as f64) as usize;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        prop_assert_eq!(g.edge_count(), n - 1 + extra);
        prop_assert!(traversal::is_connected(&g));
    }
}
