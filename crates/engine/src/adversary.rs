//! Standard adversaries, including the paper's worst-case constructions.
//!
//! Positive (feasibility) results must survive *every* adversary here;
//! negative results are demonstrated with the specific adversaries from
//! the paper's proofs:
//!
//! * [`FlipMpAdversary`] — Theorem 2.3's "opposite behavior" adversary
//!   specialized to relay protocols: a faulty transmitter sends the
//!   complement of whatever it intended to send (for a protocol relaying
//!   the source bit, that is exactly "the behavior for the opposite
//!   source message").
//! * [`LieOrJamAdversary`] — Theorem 2.4's radio adversary: when the
//!   scheduled speaker is faulty it delivers a clean lie while all other
//!   faulty nodes stay silent; when the speaker is healthy every faulty
//!   node transmits, colliding the truth away (and deafening itself).
//! * [`Throttled`] — the paper's failure-rate "slowing" reduction: an
//!   adversary facing `p > p*` that behaves fault-free with probability
//!   `(p − p*)/p` is exactly a malicious adversary for `p*`.

use rand::rngs::SmallRng;
use rand::Rng;

use randcast_graph::NodeId;

use crate::kernel::ThrottleError;
use crate::mp::{MpAdversary, MpRoundCtx, Outgoing};
use crate::radio::{RadioAction, RadioAdversary, RadioRoundCtx};

// ---------------------------------------------------------------------------
// Message-passing adversaries
// ---------------------------------------------------------------------------

/// Flips every bit a faulty transmitter intended to send (silent nodes
/// stay silent). Compatible with the limited-malicious containment rule.
///
/// For bit-relay protocols this is the Theorem 2.3 adversary: switching a
/// faulty sender's transmission to "the corresponding one for the opposite
/// source message".
#[derive(Clone, Copy, Debug, Default)]
pub struct FlipMpAdversary;

impl MpAdversary<bool> for FlipMpAdversary {
    fn corrupt_round(
        &mut self,
        ctx: MpRoundCtx<'_, bool>,
        _rng: &mut SmallRng,
    ) -> Vec<(NodeId, Outgoing<bool>)> {
        ctx.faulty
            .iter()
            .map(|&v| {
                let flipped = match &ctx.intended[v.index()] {
                    Outgoing::Silent => Outgoing::Silent,
                    Outgoing::Broadcast(b) => Outgoing::Broadcast(!b),
                    Outgoing::Directed(list) => {
                        Outgoing::Directed(list.iter().map(|&(t, b)| (t, !b)).collect())
                    }
                };
                (v, flipped)
            })
            .collect()
    }
}

/// Always broadcasts the complement of a fixed ground-truth bit from every
/// faulty node, out of turn if need be (full-malicious only — under
/// limited-malicious the engine clamps the out-of-turn part away).
///
/// A blunter instrument than [`FlipMpAdversary`]; used in ablations to
/// show flip-of-intended is the binding attack near `p = 1/2`.
#[derive(Clone, Copy, Debug)]
pub struct AntiTruthMpAdversary {
    truth: bool,
}

impl AntiTruthMpAdversary {
    /// Creates an adversary that pushes the complement of `truth`.
    #[must_use]
    pub fn new(truth: bool) -> Self {
        AntiTruthMpAdversary { truth }
    }
}

impl MpAdversary<bool> for AntiTruthMpAdversary {
    fn corrupt_round(
        &mut self,
        ctx: MpRoundCtx<'_, bool>,
        _rng: &mut SmallRng,
    ) -> Vec<(NodeId, Outgoing<bool>)> {
        ctx.faulty
            .iter()
            .map(|&v| (v, Outgoing::Broadcast(!self.truth)))
            .collect()
    }
}

/// Broadcasts a uniformly random bit from every faulty node (a weak,
/// oblivious attacker — ablation baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomBitMpAdversary;

impl MpAdversary<bool> for RandomBitMpAdversary {
    fn corrupt_round(
        &mut self,
        ctx: MpRoundCtx<'_, bool>,
        rng: &mut SmallRng,
    ) -> Vec<(NodeId, Outgoing<bool>)> {
        ctx.faulty
            .iter()
            .map(|&v| (v, Outgoing::Broadcast(rng.gen_bool(0.5))))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Radio adversaries
// ---------------------------------------------------------------------------

/// Every faulty node transmits `garbage` — maximal collision pressure and
/// self-deafening. The crude jamming attack.
#[derive(Clone, Debug)]
pub struct JamRadioAdversary<M> {
    garbage: M,
}

impl<M> JamRadioAdversary<M> {
    /// Creates a jammer transmitting `garbage` from every faulty node.
    #[must_use]
    pub fn new(garbage: M) -> Self {
        JamRadioAdversary { garbage }
    }
}

impl<M: Clone + Eq + std::fmt::Debug> RadioAdversary<M> for JamRadioAdversary<M> {
    fn corrupt_round(
        &mut self,
        ctx: RadioRoundCtx<'_, M>,
        _rng: &mut SmallRng,
    ) -> Vec<(NodeId, RadioAction<M>)> {
        ctx.faulty
            .iter()
            .map(|&v| (v, RadioAction::Transmit(self.garbage.clone())))
            .collect()
    }
}

/// Flips the bit of every faulty transmitter that was scheduled to speak;
/// faulty listeners stay silent (in-turn corruption only).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlipRadioAdversary;

impl RadioAdversary<bool> for FlipRadioAdversary {
    fn corrupt_round(
        &mut self,
        ctx: RadioRoundCtx<'_, bool>,
        _rng: &mut SmallRng,
    ) -> Vec<(NodeId, RadioAction<bool>)> {
        ctx.faulty
            .iter()
            .filter_map(|&v| match ctx.intended[v.index()] {
                RadioAction::Transmit(b) => Some((v, RadioAction::Transmit(!b))),
                RadioAction::Listen => None,
            })
            .collect()
    }
}

/// Theorem 2.4's adaptive radio adversary, generalized to any schedule
/// that designates one speaker per round.
///
/// Per round, with `T` = set of nodes intending to transmit:
///
/// * `|T| = 1`, speaker faulty → the speaker transmits the complement of
///   the ground-truth bit; every other faulty node stays silent (a clean
///   lie beats a collision).
/// * `|T| = 1`, speaker healthy → every faulty node transmits garbage,
///   colliding the truth away at shared listeners and deafening itself.
/// * otherwise → faulty nodes behave as if fault-free (the paper's
///   "outside `S`" case).
#[derive(Clone, Copy, Debug)]
pub struct LieOrJamAdversary {
    truth: bool,
}

impl LieOrJamAdversary {
    /// Creates the adversary; `truth` is the source message it fights.
    #[must_use]
    pub fn new(truth: bool) -> Self {
        LieOrJamAdversary { truth }
    }
}

impl RadioAdversary<bool> for LieOrJamAdversary {
    fn corrupt_round(
        &mut self,
        ctx: RadioRoundCtx<'_, bool>,
        _rng: &mut SmallRng,
    ) -> Vec<(NodeId, RadioAction<bool>)> {
        let speakers: Vec<NodeId> = ctx
            .graph
            .nodes()
            .filter(|v| ctx.intended[v.index()].is_transmit())
            .collect();
        if speakers.len() != 1 {
            // Behave fault-free.
            return ctx
                .faulty
                .iter()
                .map(|&v| (v, ctx.intended[v.index()].clone()))
                .collect();
        }
        let speaker = speakers[0];
        let speaker_faulty = ctx.faulty.contains(&speaker);
        ctx.faulty
            .iter()
            .map(|&v| {
                let action = if speaker_faulty {
                    if v == speaker {
                        RadioAction::Transmit(!self.truth)
                    } else {
                        RadioAction::Listen
                    }
                } else {
                    RadioAction::Transmit(!self.truth)
                };
                (v, action)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The throttling reduction
// ---------------------------------------------------------------------------

/// The paper's failure-rate "slowing" wrapper (proofs of Theorems 2.3 and
/// 2.4): when the ambient failure probability `p` exceeds the target
/// `p*`, behave fault-free with probability `(p − p*)/p` on each fault,
/// otherwise delegate to the inner adversary. The composition is exactly
/// a malicious adversary operating at rate `p*`.
#[derive(Clone, Debug)]
pub struct Throttled<A> {
    inner: A,
    keep_prob: f64,
}

impl<A> Throttled<A> {
    /// Wraps `inner`, throttling ambient rate `p` down to `p_target`.
    ///
    /// # Errors
    ///
    /// Returns [`ThrottleError`] unless `0 < p_target ≤ p < 1` —
    /// throttling only *removes* faults, so a target above the ambient
    /// rate (or a degenerate zero/negative target) is unrealizable and
    /// would silently yield a keep probability outside `(0, 1]`.
    pub fn try_new(inner: A, p: f64, p_target: f64) -> Result<Self, ThrottleError> {
        if !(0.0 < p_target && p_target <= p && p < 1.0) {
            return Err(ThrottleError { p, p_target });
        }
        Ok(Throttled {
            inner,
            // Probability of *remaining* malicious given a fault.
            keep_prob: p_target / p,
        })
    }

    /// [`try_new`](Self::try_new), panicking on an infeasible target.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p_target <= p < 1`.
    #[must_use]
    pub fn new(inner: A, p: f64, p_target: f64) -> Self {
        Self::try_new(inner, p, p_target).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl<A: MpAdversary<M>, M: Clone + Eq + std::fmt::Debug> MpAdversary<M> for Throttled<A> {
    fn corrupt_round(
        &mut self,
        ctx: MpRoundCtx<'_, M>,
        rng: &mut SmallRng,
    ) -> Vec<(NodeId, Outgoing<M>)> {
        // Split the faulty set: some stay malicious, the rest behave.
        let (kept, healed): (Vec<NodeId>, Vec<NodeId>) = ctx
            .faulty
            .iter()
            .partition(|_| rng.gen_bool(self.keep_prob));
        let sub_ctx = MpRoundCtx {
            round: ctx.round,
            graph: ctx.graph,
            faulty: &kept,
            intended: ctx.intended,
        };
        let mut overrides = self.inner.corrupt_round(sub_ctx, rng);
        overrides.extend(
            healed
                .into_iter()
                .map(|v| (v, ctx.intended[v.index()].clone())),
        );
        overrides
    }
}

impl<A: RadioAdversary<M>, M: Clone + Eq + std::fmt::Debug> RadioAdversary<M> for Throttled<A> {
    fn corrupt_round(
        &mut self,
        ctx: RadioRoundCtx<'_, M>,
        rng: &mut SmallRng,
    ) -> Vec<(NodeId, RadioAction<M>)> {
        let (kept, healed): (Vec<NodeId>, Vec<NodeId>) = ctx
            .faulty
            .iter()
            .partition(|_| rng.gen_bool(self.keep_prob));
        let sub_ctx = RadioRoundCtx {
            round: ctx.round,
            graph: ctx.graph,
            faulty: &kept,
            intended: ctx.intended,
        };
        let mut overrides = self.inner.corrupt_round(sub_ctx, rng);
        overrides.extend(
            healed
                .into_iter()
                .map(|v| (v, ctx.intended[v.index()].clone())),
        );
        overrides
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::mp::{MpNetwork, MpNode};
    use crate::radio::{RadioNetwork, RadioNode};
    use randcast_graph::generators;

    /// Sender 0 broadcasts `true` every round; everyone records bits.
    struct Repeater {
        me: usize,
        heard: Vec<bool>,
    }
    impl MpNode for Repeater {
        type Msg = bool;
        fn send(&mut self, _round: usize) -> Outgoing<bool> {
            if self.me == 0 {
                Outgoing::Broadcast(true)
            } else {
                Outgoing::Silent
            }
        }
        fn recv(&mut self, _round: usize, _from: NodeId, msg: bool) {
            self.heard.push(msg);
        }
    }

    fn mp_heard_with<A: MpAdversary<bool>>(adversary: A, p: f64, seed: u64) -> Vec<bool> {
        let g = generators::path(1);
        let mut net =
            MpNetwork::with_adversary(&g, FaultConfig::malicious(p), adversary, seed, |v| {
                Repeater {
                    me: v.index(),
                    heard: Vec::new(),
                }
            });
        net.run(400);
        net.node(g.node(1)).heard.clone()
    }

    #[test]
    fn flip_adversary_error_rate_matches_p() {
        let heard = mp_heard_with(FlipMpAdversary, 0.3, 1);
        assert_eq!(heard.len(), 400, "flip preserves delivery");
        let wrong = heard.iter().filter(|&&b| !b).count() as f64 / 400.0;
        assert!((wrong - 0.3).abs() < 0.07, "wrong={wrong}");
    }

    #[test]
    fn anti_truth_pushes_complement() {
        let heard = mp_heard_with(AntiTruthMpAdversary::new(true), 0.5, 2);
        assert!(heard.iter().any(|&b| !b));
        assert!(heard.iter().any(|&b| b));
    }

    #[test]
    fn random_bit_is_unbiased() {
        let heard = mp_heard_with(RandomBitMpAdversary, 0.9, 3);
        let falses = heard.iter().filter(|&&b| !b).count() as f64;
        // ~90% of rounds faulty, half of those deliver false: ~45%.
        let rate = falses / heard.len() as f64;
        assert!((rate - 0.45).abs() < 0.08, "rate={rate}");
    }

    #[test]
    fn throttled_mp_reduces_effective_error() {
        // Ambient p = 0.8 throttled to 0.4: flip rate should be ~0.4.
        let heard = mp_heard_with(Throttled::new(FlipMpAdversary, 0.8, 0.4), 0.8, 4);
        let wrong = heard.iter().filter(|&&b| !b).count() as f64 / heard.len() as f64;
        assert!((wrong - 0.4).abs() < 0.07, "wrong={wrong}");
    }

    #[test]
    #[should_panic(expected = "p_target")]
    fn throttled_validates_targets() {
        let _ = Throttled::new(FlipMpAdversary, 0.3, 0.5);
    }

    #[test]
    fn throttled_try_new_checks_every_boundary() {
        // Feasible interior and the p_target == p boundary (keep = 1).
        assert!(Throttled::try_new(FlipMpAdversary, 0.5, 0.2).is_ok());
        assert!(Throttled::try_new(FlipMpAdversary, 0.5, 0.5).is_ok());
        // Infeasible: target above ambient, zero/negative target,
        // ambient at or above 1 — each yields the typed error carrying
        // the rejected pair, not a degenerate adversary.
        for (p, p_target) in [(0.3, 0.5), (0.5, 0.0), (0.5, -0.1), (1.0, 0.5)] {
            let err = Throttled::try_new(FlipMpAdversary, p, p_target).unwrap_err();
            assert_eq!((err.p, err.p_target), (p, p_target));
            assert!(err.to_string().contains("p_target"), "{err}");
        }
    }

    /// Radio: node `speaker` transmits `true` every round, rest listen.
    struct RSpeak {
        me: usize,
        speaker: usize,
        heard: Vec<Option<bool>>,
    }
    impl RadioNode for RSpeak {
        type Msg = bool;
        fn act(&mut self, _round: usize) -> RadioAction<bool> {
            if self.me == self.speaker {
                RadioAction::Transmit(true)
            } else {
                RadioAction::Listen
            }
        }
        fn recv(&mut self, _round: usize, heard: Option<bool>) {
            self.heard.push(heard);
        }
    }

    #[test]
    fn lie_or_jam_on_star_produces_clean_lies_and_collisions() {
        // Star with center 0 and 4 leaves; speaker = leaf 1 (the source),
        // listener = center 0.
        let g = generators::star(4);
        let mut net = RadioNetwork::with_adversary(
            &g,
            FaultConfig::malicious(0.4),
            LieOrJamAdversary::new(true),
            7,
            |v| RSpeak {
                me: v.index(),
                speaker: 1,
                heard: Vec::new(),
            },
        );
        net.run(600);
        let center = net.node(g.node(0));
        let lies = center.heard.iter().filter(|h| **h == Some(false)).count();
        let truths = center.heard.iter().filter(|h| **h == Some(true)).count();
        assert!(lies > 0, "speaker faults should deliver clean lies");
        assert!(truths > 0, "fault-free rounds should deliver truth");
        assert!(net.stats().collisions > 0, "healthy-speaker rounds jam");
    }

    #[test]
    fn jam_adversary_maximizes_collisions() {
        let g = generators::star(4);
        let mut net = RadioNetwork::with_adversary(
            &g,
            FaultConfig::malicious(0.5),
            JamRadioAdversary::new(false),
            8,
            |v| RSpeak {
                me: v.index(),
                speaker: 1,
                heard: Vec::new(),
            },
        );
        net.run(200);
        assert!(net.stats().collisions > 20);
    }

    #[test]
    fn flip_radio_only_speaks_in_turn() {
        let g = generators::path(2);
        let mut net = RadioNetwork::with_adversary(
            &g,
            FaultConfig::malicious(0.5),
            FlipRadioAdversary,
            9,
            |v| RSpeak {
                me: v.index(),
                speaker: 0,
                heard: Vec::new(),
            },
        );
        net.run(300);
        // Node 2 is not adjacent to the speaker and no faulty listener
        // ever transmits, so node 2 hears nothing, ever.
        assert!(net.node(g.node(2)).heard.iter().all(Option::is_none));
        // Node 1 hears flipped bits at rate ~p.
        let heard = &net.node(g.node(1)).heard;
        let falses = heard.iter().filter(|h| **h == Some(false)).count();
        assert!(falses > 100, "falses={falses}");
    }

    #[test]
    fn throttled_radio_heals_faults() {
        let g = generators::path(1);
        // Throttle 0.9 down to 0.1: listener should hear mostly truth.
        let mut net = RadioNetwork::with_adversary(
            &g,
            FaultConfig::malicious(0.9),
            Throttled::new(FlipRadioAdversary, 0.9, 0.1),
            10,
            |v| RSpeak {
                me: v.index(),
                speaker: 0,
                heard: Vec::new(),
            },
        );
        net.run(500);
        let heard = &net.node(g.node(1)).heard;
        let truths = heard.iter().filter(|h| **h == Some(true)).count() as f64;
        let rate = truths / heard.len() as f64;
        assert!((rate - 0.9).abs() < 0.06, "rate={rate}");
    }
}
