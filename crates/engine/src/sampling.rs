//! Aggregate fault-sampling helpers shared by the large-`n` fast-path
//! engines ([`crate::flood_fast`], [`crate::radio_fast`]).

use rand::rngs::SmallRng;
use rand::Rng;

/// Number of failures before the next success when each trial fails
/// with probability `p = exp(ln_p)`: `⌊ln(U) / ln(p)⌋` for uniform
/// `U ∈ (0, 1]`.
///
/// At high `p` (sparse successes) this lets a sampler jump directly
/// between successful trials instead of flipping one coin per trial,
/// making the per-round cost proportional to the number of successes.
pub(crate) fn geometric_skip(rng: &mut SmallRng, ln_p: f64) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    // 1 − u ∈ (0, 1]: avoids ln(0).
    let skip = (1.0 - u).ln() / ln_p;
    if skip >= usize::MAX as f64 {
        usize::MAX
    } else {
        skip as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn skip_mean_matches_geometric_expectation() {
        // E[failures before a success] = p / (1 − p).
        let mut rng = SmallRng::seed_from_u64(3);
        for p in [0.8, 0.9, 0.97] {
            let ln_p = f64::ln(p);
            let trials = 20_000;
            let total: f64 = (0..trials)
                .map(|_| geometric_skip(&mut rng, ln_p) as f64)
                .sum();
            let mean = total / f64::from(trials);
            let expected = p / (1.0 - p);
            assert!(
                (mean - expected).abs() < 0.08 * expected,
                "p={p}: mean {mean} vs {expected}"
            );
        }
    }
}
