//! A specialized large-`n` fast path for the paper's *Simple* broadcast
//! (`Simple-Omission`, Theorem 2.1) under omission faults, in both the
//! message-passing and radio models at once.
//!
//! The trait-object `SimplePlan` executes the full `n · m`-round
//! schedule on a general network engine: `n` automaton dispatches plus
//! `n` fault coins per round, `Θ(n² m)` work per trial. But under
//! omission faults the protocol's dynamics collapse to one draw per
//! *internal tree node*:
//!
//! * Only `v_i` transmits during phase `i` (rounds `[i·m, (i+1)·m)`),
//!   so there are never collisions among correct nodes — the radio and
//!   message-passing executions are **the same process**.
//! * Fault coins are per-(node, round) — a failed step silences *all*
//!   of a node's transmissions at once (`Outgoing::Directed` in MP, the
//!   single broadcast in radio). All children of `v_i` therefore hear
//!   in exactly the same rounds, and what they hear is `v_i`'s value,
//!   fixed before its phase starts (parents are enumerated first).
//! * A child adopts its parent's value iff at least one of the `m`
//!   transmissions works — the index of the first working one is
//!   Geometric(`1 − p`) truncated at `m`.
//!
//! [`FastSimple`] draws exactly that: one uniform per internal node of
//! the BFS spanning tree, in the paper's `v1..vn` enumeration order,
//! mapped through the inverse geometric CDF by the shared
//! [`FaultSampler`](crate::kernel::FaultSampler). A node ends *correct*
//! iff its whole ancestor chain relayed successfully. The outcome
//! distribution (correct set, success indicator) is exactly that of
//! `SimplePlan` under the silent omission adversary in either model —
//! `crates/core/tests/simple_equivalence.rs` pins this with a 250-seed
//! Welch-tolerance suite plus exact `p = 0` agreement.
//!
//! Because the draw for node `v` is a *fixed* uniform per (seed,
//! position) mapped monotonically through `p`, the correct set for a
//! fixed seed **shrinks monotonically in `p`** — a coupling the
//! property tests exploit.
//!
//! The `*_model` entry points generalize the same collapse to any
//! [`FaultModel`]: a malicious parent still owns its phase exclusively,
//! so the child-side majority vote over the `m` (possibly corrupted)
//! transmissions resolves from one per-phase corruption count — the
//! bit-sliced threshold counting runs Theorem 2.3's flip vote and
//! Theorem 2.4's limited lie vote at the omission kernel's cost. The
//! i.i.d. silent instance delegates to the hard-wired omission path
//! (byte-identical outcomes); `crates/core/tests/malicious_equivalence.rs`
//! pins the malicious instances against the trait engines.
//!
//! Like the other fast kernels, `FastSimple` is defined on graphs
//! disconnected from the source: unreachable nodes simply never adopt,
//! and the outcome reports the correct *fraction*. The schedule keeps
//! the trait engine's fixed length `n · m` (Simple has no early
//! termination — a node cannot know the broadcast is done), so the
//! completion round of a successful trial is `total_rounds` by
//! definition; [`last_adoption_round`](FastSimpleOutcome::last_adoption_round)
//! exposes the transient instead.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use randcast_graph::shard::{PassLoader, ShardError, ShardPlan, ShardStore, ShardView};
use randcast_graph::{CsrGraph, NodeId};

use crate::kernel::{
    BatchBernoulli, BatchTape, BatchedInformedSet, CorruptionKind, FaultModel, FaultSampler,
    FaultTapes, InformedSet, LaneCounter, LaneMask, FAULT_STREAM, LANES,
};

/// The first-success index of one lane's phase draw, shared by
/// [`FastSimple::run_lane`] and the batch extraction so both read the
/// identical value.
///
/// The draw couples two stages to one 53-bit uniform `U` at site
/// `phase`: the *adoption* coin is the bit-sliced threshold compare
/// `U < ⌈(1 − p^m)·2^53⌉` ([`BatchBernoulli`] over the same planes),
/// and conditional on adoption the first working transmission index is
/// the inverse geometric CDF `⌊ln(1 − U)/ln p⌋` — given `U < 1 − p^m`
/// that is exactly the truncated Geometric(1 − p) the scalar sampler
/// draws. The clamp to `m − 1` guards the boundary where the float
/// evaluation lands on the far side of the integer threshold compare.
fn phase_t(tape: &BatchTape, site: u64, lane: u32, ln_p: f64, m: usize) -> usize {
    if ln_p == f64::NEG_INFINITY {
        // p = 0: the first transmission works.
        return 0;
    }
    let u = tape.uniform53(site, lane) as f64 / (1u64 << 53) as f64;
    (((1.0 - u).ln() / ln_p) as usize).min(m - 1)
}

/// Site key of transmission `t` of `v`'s phase on the malicious fault
/// tapes. Unlike the omission collapse (one site per phase), the vote
/// kernels draw one corruption coin per *round* of the phase; each node
/// transmits during exactly one phase, so `(t, v)` never collides.
fn vote_site(t: usize, v: u32) -> u64 {
    (t as u64) << 32 | u64::from(v)
}

/// A compiled fast-path Simple plan: the BFS spanning structure of the
/// source component (from [`CsrGraph::bfs_tree`]) plus the phase length
/// `m`.
#[derive(Clone, Debug)]
pub struct FastSimple {
    /// The paper's `v1..vn` enumeration of the source component.
    order: Vec<u32>,
    /// `children[child_offsets[v]..child_offsets[v+1]]` are `v`'s tree
    /// children.
    child_offsets: Vec<u32>,
    children: Vec<u32>,
    source: u32,
    n: usize,
    m: usize,
}

impl FastSimple {
    /// Compiles a plan broadcasting from `source` with phase length
    /// `m`. A graph disconnected from `source` is allowed (unreachable
    /// nodes never adopt; the outcome reports the correct fraction).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(csr: &CsrGraph, source: NodeId, m: usize) -> Self {
        assert!(m > 0, "phase length must be positive");
        let tree = csr.bfs_tree(u32::from(source));
        let order = tree.order().to_vec();
        let (child_offsets, children) = tree.into_children_csr();
        FastSimple {
            order,
            child_offsets,
            children,
            source: u32::from(source),
            n: csr.node_count(),
            m,
        }
    }

    /// The phase length `m`.
    #[must_use]
    pub fn phase_len(&self) -> usize {
        self.m
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Total rounds one execution takes: `n · m`, exactly as the
    /// trait-object `SimplePlan` (phases are scheduled for every node,
    /// reachable or not).
    #[must_use]
    pub fn total_rounds(&self) -> usize {
        self.n * self.m
    }

    fn children_of(&self, v: usize) -> &[u32] {
        &self.children[self.child_offsets[v] as usize..self.child_offsets[v + 1] as usize]
    }

    /// Executes one seeded broadcast with per-(node, round) transmitter
    /// omission probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn run(&self, p: f64, seed: u64) -> FastSimpleOutcome {
        let sampler = FaultSampler::new(p);
        let n = self.n;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut correct = InformedSet::new(n);
        correct.insert(self.source);
        let almost_target = n.saturating_sub(1).max(1);
        let mut almost_round = (correct.count() >= almost_target).then_some(0);
        let mut last_adoption = 0usize;

        for (phase, &u) in self.order.iter().enumerate() {
            let kids = self.children_of(u as usize);
            if kids.is_empty() {
                continue;
            }
            // One draw per internal node, whether or not its subtree is
            // still in play: the draw count must not depend on `p` or
            // on earlier outcomes, or the per-seed monotone coupling
            // (and determinism of the stream) would break.
            let t = sampler.first_success(&mut rng);
            if t >= self.m || !correct.contains(u) {
                continue;
            }
            // All children hear the first working transmission of u's
            // phase simultaneously (rounds are 1-based).
            let round = phase * self.m + t + 1;
            for &c in kids {
                correct.insert(c);
            }
            last_adoption = round;
            if almost_round.is_none() && correct.count() >= almost_target {
                almost_round = Some(round);
            }
        }

        FastSimpleOutcome {
            n,
            m: self.m,
            almost_round,
            last_adoption,
            correct,
        }
    }

    /// Scalar replay of lane `lane` of batched block `block_seed`: the
    /// same per-internal-node resolution as [`run`](Self::run), but the
    /// phase draw is lane `lane` of the site-addressed batch tape (site
    /// = phase index) instead of a draw from a sequential RNG — see
    /// [`phase_t`] for the two-stage coupling. The sampled process is
    /// statistically identical to [`run`](Self::run), and the site
    /// addressing is what lets [`run_batch`](Self::run_batch) reproduce
    /// this outcome *exactly*, lane for lane — see
    /// [`FastSimpleBatch::lane_outcome`].
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or `lane ≥ 64`.
    #[must_use]
    pub fn run_lane(&self, p: f64, block_seed: u64, lane: u32) -> FastSimpleOutcome {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        assert!((lane as usize) < LANES, "lane out of range");
        let adopt = BatchBernoulli::new(1.0 - p.powi(self.m as i32));
        let tape = BatchTape::new(block_seed, FAULT_STREAM);
        let ln_p = p.ln();
        let n = self.n;
        let mut correct = InformedSet::new(n);
        correct.insert(self.source);
        let almost_target = n.saturating_sub(1).max(1);
        let mut almost_round = (correct.count() >= almost_target).then_some(0);
        let mut last_adoption = 0usize;

        for (phase, &u) in self.order.iter().enumerate() {
            let kids = self.children_of(u as usize);
            if kids.is_empty() {
                continue;
            }
            // Coins are pure functions of (site, lane): no draw-count
            // discipline needed, skipping a dead subtree reads nothing.
            if !correct.contains(u) || !adopt.lane(&tape, phase as u64, lane) {
                continue;
            }
            let t = phase_t(&tape, phase as u64, lane, ln_p, self.m);
            let round = phase * self.m + t + 1;
            for &c in kids {
                correct.insert(c);
            }
            last_adoption = round;
            if almost_round.is_none() && correct.count() >= almost_target {
                almost_round = Some(round);
            }
        }

        FastSimpleOutcome {
            n,
            m: self.m,
            almost_round,
            last_adoption,
            correct,
        }
    }

    /// Runs all 64 trial lanes of block `block_seed` at once: the
    /// correct set is a lane word per node and each internal node's
    /// phase resolves as one bit-sliced adoption mask
    /// (Bernoulli(`1 − p^m`), restricted to lanes whose parent is
    /// correct). Lane `k` of the result is byte-identical to
    /// [`run_lane`](Self::run_lane)`(p, block_seed, k)`.
    ///
    /// Round *numbers* (the almost-complete crossing and the last
    /// adoption) need the within-phase transmission index `t`, which
    /// only matters for at most two phases per lane; those lanes'
    /// 53-bit uniforms are extracted lazily after the single forward
    /// pass instead of being resolved for every node.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn run_batch(&self, p: f64, block_seed: u64) -> FastSimpleBatch {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        let adopt = BatchBernoulli::new(1.0 - p.powi(self.m as i32));
        let tape = BatchTape::new(block_seed, FAULT_STREAM);
        let ln_p = p.ln();
        let n = self.n;
        let mut correct_masks: Vec<LaneMask> = vec![0; n];
        correct_masks[self.source as usize] = !0;
        let mut counts = LaneCounter::new();
        counts.add_masked(!0, 1);
        let almost_target = n.saturating_sub(1).max(1) as u64;
        let mut almost_done: LaneMask = 0;
        let mut almost_phase = [0u32; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        // Forward pass: resolve every internal node's 64 adoption coins.
        for (phase, &u) in self.order.iter().enumerate() {
            let kids = self.children_of(u as usize);
            if kids.is_empty() {
                continue;
            }
            let eff = adopt.mask(&tape, phase as u64, correct_masks[u as usize]);
            if eff == 0 {
                continue;
            }
            // Tree children have unique parents: each child's mask is
            // written exactly once, by its own parent's phase.
            for &c in kids {
                correct_masks[c as usize] = eff;
            }
            counts.add_masked(eff, kids.len() as u64);
            if almost_done != !0 {
                let crossed = counts.ge_mask(almost_target) & !almost_done;
                if crossed != 0 {
                    let mut bits = crossed;
                    while bits != 0 {
                        almost_phase[bits.trailing_zeros() as usize] = phase as u32;
                        bits &= bits - 1;
                    }
                    almost_done |= crossed;
                }
            }
        }

        // Backward scan: each lane's last effective phase (adoption
        // rounds grow with the phase, so the last effective phase holds
        // the last adoption).
        let mut last_phase = [0u32; LANES];
        let mut adopted: LaneMask = 0;
        for (phase, &u) in self.order.iter().enumerate().rev() {
            let kids = self.children_of(u as usize);
            if kids.is_empty() {
                continue;
            }
            let hit = correct_masks[kids[0] as usize] & !adopted;
            if hit != 0 {
                let mut bits = hit;
                while bits != 0 {
                    last_phase[bits.trailing_zeros() as usize] = phase as u32;
                    bits &= bits - 1;
                }
                adopted |= hit;
                if adopted == !0 {
                    break;
                }
            }
        }

        // Lazy `t` extraction for the at most two stat-relevant phases
        // per lane.
        let mut last_adoption = vec![0usize; LANES];
        for lane in 0..LANES as u32 {
            let li = lane as usize;
            if adopted >> lane & 1 == 1 {
                let ph = last_phase[li] as usize;
                last_adoption[li] = ph * self.m + phase_t(&tape, ph as u64, lane, ln_p, self.m) + 1;
            }
            if almost_done >> lane & 1 == 1 && almost_round[li].is_none() {
                let ph = almost_phase[li] as usize;
                almost_round[li] =
                    Some(ph * self.m + phase_t(&tape, ph as u64, lane, ln_p, self.m) + 1);
            }
        }

        FastSimpleBatch {
            n,
            m: self.m,
            correct: BatchedInformedSet::from_parts(correct_masks, counts),
            almost_round,
            last_adoption,
        }
    }

    /// Scalar lane replay executed shard-at-a-time. The enumeration
    /// `order` is (BFS level, id)-sorted, so walking it in maximal
    /// same-shard runs — acquiring one [`ShardView`] of the
    /// children CSR per run — visits *exactly the monolithic phase
    /// sequence*: sharding the Simple algorithm is a pure access-path
    /// change, and the outcome is trivially **bit-identical** to
    /// [`run_lane`](Self::run_lane) (each phase index stays the node's
    /// global position in `order`).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`, `lane ≥ 64`, or the plan covers a
    /// different node count.
    #[must_use]
    pub fn run_lane_sharded(
        &self,
        plan: &ShardPlan,
        p: f64,
        block_seed: u64,
        lane: u32,
    ) -> FastSimpleOutcome {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        assert!((lane as usize) < LANES, "lane out of range");
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        let adopt = BatchBernoulli::new(1.0 - p.powi(self.m as i32));
        let tape = BatchTape::new(block_seed, FAULT_STREAM);
        let ln_p = p.ln();
        let n = self.n;
        let mut correct = InformedSet::new(n);
        correct.insert(self.source);
        let almost_target = n.saturating_sub(1).max(1);
        let mut almost_round = (correct.count() >= almost_target).then_some(0);
        let mut last_adoption = 0usize;

        let len = self.order.len();
        let mut phase = 0usize;
        while phase < len {
            let s = plan.shard_of(self.order[phase]);
            let (start, end) = plan.range(s);
            let view = ShardView::over(&self.child_offsets, &self.children, start, end);
            while phase < len && view.contains(self.order[phase]) {
                let u = self.order[phase];
                let kids = view.targets_of(u);
                if !kids.is_empty() && correct.contains(u) && adopt.lane(&tape, phase as u64, lane)
                {
                    let t = phase_t(&tape, phase as u64, lane, ln_p, self.m);
                    let round = phase * self.m + t + 1;
                    for &c in kids {
                        correct.insert(c);
                    }
                    last_adoption = round;
                    if almost_round.is_none() && correct.count() >= almost_target {
                        almost_round = Some(round);
                    }
                }
                phase += 1;
            }
        }

        FastSimpleOutcome {
            n,
            m: self.m,
            almost_round,
            last_adoption,
            correct,
        }
    }

    /// The 64-lane batch with its forward pass executed shard-at-a-time
    /// (same maximal same-shard run walk as
    /// [`run_lane_sharded`](Self::run_lane_sharded)); **bit-identical**
    /// to [`run_batch`](Self::run_batch) for every plan. The backward
    /// last-phase scan and the lazy `t` extraction read only per-node
    /// values already in memory, so they stay monolithic.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or the plan covers a different node
    /// count.
    #[must_use]
    pub fn run_batch_sharded(&self, plan: &ShardPlan, p: f64, block_seed: u64) -> FastSimpleBatch {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        let adopt = BatchBernoulli::new(1.0 - p.powi(self.m as i32));
        let tape = BatchTape::new(block_seed, FAULT_STREAM);
        let ln_p = p.ln();
        let n = self.n;
        let mut correct_masks: Vec<LaneMask> = vec![0; n];
        correct_masks[self.source as usize] = !0;
        let mut counts = LaneCounter::new();
        counts.add_masked(!0, 1);
        let almost_target = n.saturating_sub(1).max(1) as u64;
        let mut almost_done: LaneMask = 0;
        let mut almost_phase = [0u32; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        let len = self.order.len();
        let mut phase = 0usize;
        while phase < len {
            let s = plan.shard_of(self.order[phase]);
            let (start, end) = plan.range(s);
            let view = ShardView::over(&self.child_offsets, &self.children, start, end);
            while phase < len && view.contains(self.order[phase]) {
                let u = self.order[phase];
                let kids = view.targets_of(u);
                if kids.is_empty() {
                    phase += 1;
                    continue;
                }
                let eff = adopt.mask(&tape, phase as u64, correct_masks[u as usize]);
                if eff == 0 {
                    phase += 1;
                    continue;
                }
                for &c in kids {
                    correct_masks[c as usize] = eff;
                }
                counts.add_masked(eff, kids.len() as u64);
                if almost_done != !0 {
                    let crossed = counts.ge_mask(almost_target) & !almost_done;
                    if crossed != 0 {
                        let mut bits = crossed;
                        while bits != 0 {
                            almost_phase[bits.trailing_zeros() as usize] = phase as u32;
                            bits &= bits - 1;
                        }
                        almost_done |= crossed;
                    }
                }
                phase += 1;
            }
        }

        let mut last_phase = [0u32; LANES];
        let mut adopted: LaneMask = 0;
        for (phase, &u) in self.order.iter().enumerate().rev() {
            let kids = self.children_of(u as usize);
            if kids.is_empty() {
                continue;
            }
            let hit = correct_masks[kids[0] as usize] & !adopted;
            if hit != 0 {
                let mut bits = hit;
                while bits != 0 {
                    last_phase[bits.trailing_zeros() as usize] = phase as u32;
                    bits &= bits - 1;
                }
                adopted |= hit;
                if adopted == !0 {
                    break;
                }
            }
        }

        let mut last_adoption = vec![0usize; LANES];
        for lane in 0..LANES as u32 {
            let li = lane as usize;
            if adopted >> lane & 1 == 1 {
                let ph = last_phase[li] as usize;
                last_adoption[li] = ph * self.m + phase_t(&tape, ph as u64, lane, ln_p, self.m) + 1;
            }
            if almost_done >> lane & 1 == 1 && almost_round[li].is_none() {
                let ph = almost_phase[li] as usize;
                almost_round[li] =
                    Some(ph * self.m + phase_t(&tape, ph as u64, lane, ln_p, self.m) + 1);
            }
        }

        FastSimpleBatch {
            n,
            m: self.m,
            correct: BatchedInformedSet::from_parts(correct_masks, counts),
            almost_round,
            last_adoption,
        }
    }

    /// Hands `model` the plan's broadcast-tree topology — call once
    /// before the first `*_model` run so placement instances
    /// ([`crate::kernel::WorstCasePlacement`]) can pin their node set;
    /// a no-op for the coin-only instances.
    pub fn preprocess<M: FaultModel + ?Sized>(&self, model: &mut M) {
        model.preprocess_tree(
            &self.child_offsets,
            &self.children,
            &self.order,
            self.source,
        );
    }

    /// Resolves one phase of parent `u` for all 64 lanes at once:
    /// counts the corrupt transmissions of the phase into `k` (one
    /// model coin per round, at site `(t << 32) | u`, shared by the
    /// whole sibling set — the trait engines draw one fault coin per
    /// transmitter per round) and applies the child-side rule of the
    /// model's [`CorruptionKind`]. Returns the `(informed, correct)`
    /// child masks given parent-informed lanes `act` and
    /// parent-correct lanes `val`:
    ///
    /// * `Silent` — the child hears iff some transmission survives, and
    ///   inherits the parent's value (omission semantics on arbitrary,
    ///   e.g. placed, fault sites);
    /// * `Flip` — all `m` bits arrive, `k` of them inverted; the
    ///   majority vote keeps a true parent's value iff `k < m − ⌊m/2⌋`
    ///   and fabricates truth from a false parent iff `k ≥ ⌊m/2⌋ + 1`
    ///   (Theorem 2.3's opposite-behavior adversary);
    /// * `Lie` — corrupt rounds deliver the constant lie `false`, so
    ///   only a true parent with `k < m − ⌊m/2⌋` convinces the vote
    ///   (Theorem 2.4's radio adversary under the limited clamp).
    fn resolve_phase_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        k: &mut LaneCounter,
        u: u32,
        act: LaneMask,
        val: LaneMask,
    ) -> (LaneMask, LaneMask) {
        let m = self.m;
        k.clear();
        for t in 0..m {
            k.add_masked(model.corrupt_mask(tapes, vote_site(t, u), u, act), 1);
        }
        let hi = (m - m / 2) as u64;
        match model.kind() {
            CorruptionKind::Silent => {
                let heard = act & !k.ge_mask(m as u64);
                (heard, val & heard)
            }
            CorruptionKind::Flip => {
                let lo = (m / 2 + 1) as u64;
                (act, (val & !k.ge_mask(hi)) | (act & !val & k.ge_mask(lo)))
            }
            CorruptionKind::Lie => (act, val & !k.ge_mask(hi)),
        }
    }

    /// The round at which the children of `order[phase]` settle in lane
    /// `lane`: a majority vote needs the whole phase, while `Silent`
    /// corruption adopts at the first clean transmission. The coins are
    /// pure functions of (site, lane), so this lazy re-read is exact.
    fn model_round<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        phase: usize,
        lane: u32,
    ) -> usize {
        match model.kind() {
            CorruptionKind::Silent => {
                let u = self.order[phase];
                let t = (0..self.m)
                    .find(|&t| !model.corrupt_lane(tapes, vote_site(t, u), u, lane))
                    .expect("an adopting phase has a clean transmission");
                phase * self.m + t + 1
            }
            _ => (phase + 1) * self.m,
        }
    }

    /// Scalar replay of lane `lane` of batched block `block_seed` under
    /// an arbitrary [`FaultModel`] — see
    /// [`resolve_phase_model`](Self::resolve_phase_model) for the vote
    /// rules. I.i.d. `Silent` instances delegate to
    /// [`run_lane`](Self::run_lane) and stay byte-identical with the
    /// omission kernel.
    ///
    /// The outcome's `correct` set holds the nodes whose final value is
    /// the source bit: under malicious corruption a node can be
    /// informed yet *wrong*, and only correct nodes count toward
    /// completion and the almost-complete crossing.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64`.
    #[must_use]
    pub fn run_lane_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        block_seed: u64,
        lane: u32,
    ) -> FastSimpleOutcome {
        assert!((lane as usize) < LANES, "lane out of range");
        if model.kind() == CorruptionKind::Silent {
            if let Some(p) = model.iid_rate() {
                return self.run_lane(p, block_seed, lane);
            }
        }
        let tapes = FaultTapes::new(block_seed);
        let bit: LaneMask = 1u64 << lane;
        let mut k = LaneCounter::new();
        let n = self.n;
        let mut informed = InformedSet::new(n);
        let mut correct = InformedSet::new(n);
        informed.insert(self.source);
        correct.insert(self.source);
        let almost_target = n.saturating_sub(1).max(1);
        let mut almost_round = (correct.count() >= almost_target).then_some(0);
        let mut last_adoption = 0usize;

        for (phase, &u) in self.order.iter().enumerate() {
            let kids = self.children_of(u as usize);
            if kids.is_empty() || !informed.contains(u) {
                continue;
            }
            let val = if correct.contains(u) { bit } else { 0 };
            let (inf_eff, val_eff) = self.resolve_phase_model(model, &tapes, &mut k, u, bit, val);
            if inf_eff == 0 {
                continue;
            }
            for &c in kids {
                informed.insert(c);
                if val_eff != 0 {
                    correct.insert(c);
                }
            }
            if val_eff != 0 {
                let round = self.model_round(model, &tapes, phase, lane);
                last_adoption = round;
                if almost_round.is_none() && correct.count() >= almost_target {
                    almost_round = Some(round);
                }
            }
        }

        FastSimpleOutcome {
            n,
            m: self.m,
            almost_round,
            last_adoption,
            correct,
        }
    }

    /// Runs all 64 trial lanes of block `block_seed` under an arbitrary
    /// [`FaultModel`]: per phase, one bit-sliced corruption count over
    /// the `m` transmission coins resolves every lane's majority vote
    /// at once. Lane `k` of the result is byte-identical to
    /// [`run_lane_model`](Self::run_lane_model)`(model, block_seed, k)`;
    /// i.i.d. `Silent` instances delegate to
    /// [`run_batch`](Self::run_batch).
    #[must_use]
    pub fn run_batch_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        block_seed: u64,
    ) -> FastSimpleBatch {
        if model.kind() == CorruptionKind::Silent {
            if let Some(p) = model.iid_rate() {
                return self.run_batch(p, block_seed);
            }
        }
        let tapes = FaultTapes::new(block_seed);
        let n = self.n;
        let mut informed_masks: Vec<LaneMask> = vec![0; n];
        let mut value_masks: Vec<LaneMask> = vec![0; n];
        informed_masks[self.source as usize] = !0;
        value_masks[self.source as usize] = !0;
        let mut counts = LaneCounter::new();
        counts.add_masked(!0, 1);
        let almost_target = n.saturating_sub(1).max(1) as u64;
        let mut almost_done: LaneMask = 0;
        let mut almost_phase = [0u32; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }
        let mut k = LaneCounter::new();

        for (phase, &u) in self.order.iter().enumerate() {
            let kids = self.children_of(u as usize);
            if kids.is_empty() {
                continue;
            }
            let act = informed_masks[u as usize];
            if act == 0 {
                continue;
            }
            let val = value_masks[u as usize];
            let (inf_eff, val_eff) = self.resolve_phase_model(model, &tapes, &mut k, u, act, val);
            if inf_eff == 0 {
                continue;
            }
            for &c in kids {
                informed_masks[c as usize] = inf_eff;
                value_masks[c as usize] = val_eff;
            }
            counts.add_masked(val_eff, kids.len() as u64);
            if almost_done != !0 {
                let crossed = counts.ge_mask(almost_target) & !almost_done;
                if crossed != 0 {
                    let mut bits = crossed;
                    while bits != 0 {
                        almost_phase[bits.trailing_zeros() as usize] = phase as u32;
                        bits &= bits - 1;
                    }
                    almost_done |= crossed;
                }
            }
        }

        self.finish_batch_model(
            model,
            &tapes,
            value_masks,
            counts,
            almost_done,
            &almost_phase,
            almost_round,
        )
    }

    /// Scalar model-lane replay executed shard-at-a-time — the same
    /// maximal same-shard run walk as
    /// [`run_lane_sharded`](Self::run_lane_sharded), and bit-identical
    /// to [`run_lane_model`](Self::run_lane_model) for every plan (the
    /// corruption coins key on the node's *global* phase position, so
    /// the access path cannot move them).
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64` or the plan covers a different node count.
    #[must_use]
    pub fn run_lane_sharded_model<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        block_seed: u64,
        lane: u32,
    ) -> FastSimpleOutcome {
        assert!((lane as usize) < LANES, "lane out of range");
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        if model.kind() == CorruptionKind::Silent {
            if let Some(p) = model.iid_rate() {
                return self.run_lane_sharded(plan, p, block_seed, lane);
            }
        }
        let tapes = FaultTapes::new(block_seed);
        let bit: LaneMask = 1u64 << lane;
        let mut k = LaneCounter::new();
        let n = self.n;
        let mut informed = InformedSet::new(n);
        let mut correct = InformedSet::new(n);
        informed.insert(self.source);
        correct.insert(self.source);
        let almost_target = n.saturating_sub(1).max(1);
        let mut almost_round = (correct.count() >= almost_target).then_some(0);
        let mut last_adoption = 0usize;

        let len = self.order.len();
        let mut phase = 0usize;
        while phase < len {
            let s = plan.shard_of(self.order[phase]);
            let (start, end) = plan.range(s);
            let view = ShardView::over(&self.child_offsets, &self.children, start, end);
            while phase < len && view.contains(self.order[phase]) {
                let u = self.order[phase];
                let kids = view.targets_of(u);
                if kids.is_empty() || !informed.contains(u) {
                    phase += 1;
                    continue;
                }
                let val = if correct.contains(u) { bit } else { 0 };
                let (inf_eff, val_eff) =
                    self.resolve_phase_model(model, &tapes, &mut k, u, bit, val);
                if inf_eff != 0 {
                    for &c in kids {
                        informed.insert(c);
                        if val_eff != 0 {
                            correct.insert(c);
                        }
                    }
                    if val_eff != 0 {
                        let round = self.model_round(model, &tapes, phase, lane);
                        last_adoption = round;
                        if almost_round.is_none() && correct.count() >= almost_target {
                            almost_round = Some(round);
                        }
                    }
                }
                phase += 1;
            }
        }

        FastSimpleOutcome {
            n,
            m: self.m,
            almost_round,
            last_adoption,
            correct,
        }
    }

    /// The 64-lane model batch with its forward pass executed
    /// shard-at-a-time; bit-identical to
    /// [`run_batch_model`](Self::run_batch_model) for every plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different node count.
    #[must_use]
    pub fn run_batch_sharded_model<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        block_seed: u64,
    ) -> FastSimpleBatch {
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        if model.kind() == CorruptionKind::Silent {
            if let Some(p) = model.iid_rate() {
                return self.run_batch_sharded(plan, p, block_seed);
            }
        }
        let tapes = FaultTapes::new(block_seed);
        let n = self.n;
        let mut informed_masks: Vec<LaneMask> = vec![0; n];
        let mut value_masks: Vec<LaneMask> = vec![0; n];
        informed_masks[self.source as usize] = !0;
        value_masks[self.source as usize] = !0;
        let mut counts = LaneCounter::new();
        counts.add_masked(!0, 1);
        let almost_target = n.saturating_sub(1).max(1) as u64;
        let mut almost_done: LaneMask = 0;
        let mut almost_phase = [0u32; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }
        let mut k = LaneCounter::new();

        let len = self.order.len();
        let mut phase = 0usize;
        while phase < len {
            let s = plan.shard_of(self.order[phase]);
            let (start, end) = plan.range(s);
            let view = ShardView::over(&self.child_offsets, &self.children, start, end);
            while phase < len && view.contains(self.order[phase]) {
                let u = self.order[phase];
                let kids = view.targets_of(u);
                if kids.is_empty() {
                    phase += 1;
                    continue;
                }
                let act = informed_masks[u as usize];
                if act == 0 {
                    phase += 1;
                    continue;
                }
                let val = value_masks[u as usize];
                let (inf_eff, val_eff) =
                    self.resolve_phase_model(model, &tapes, &mut k, u, act, val);
                if inf_eff == 0 {
                    phase += 1;
                    continue;
                }
                for &c in kids {
                    informed_masks[c as usize] = inf_eff;
                    value_masks[c as usize] = val_eff;
                }
                counts.add_masked(val_eff, kids.len() as u64);
                if almost_done != !0 {
                    let crossed = counts.ge_mask(almost_target) & !almost_done;
                    if crossed != 0 {
                        let mut bits = crossed;
                        while bits != 0 {
                            almost_phase[bits.trailing_zeros() as usize] = phase as u32;
                            bits &= bits - 1;
                        }
                        almost_done |= crossed;
                    }
                }
                phase += 1;
            }
        }

        self.finish_batch_model(
            model,
            &tapes,
            value_masks,
            counts,
            almost_done,
            &almost_phase,
            almost_round,
        )
    }

    /// Shared tail of the model batches: the backward last-correct-
    /// adoption scan over the value masks plus the lazy per-lane round
    /// resolution (both read only per-node values already in memory, so
    /// they stay monolithic even for the sharded forward pass).
    #[allow(clippy::too_many_arguments)]
    fn finish_batch_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        value_masks: Vec<LaneMask>,
        counts: LaneCounter,
        almost_done: LaneMask,
        almost_phase: &[u32; LANES],
        mut almost_round: Vec<Option<usize>>,
    ) -> FastSimpleBatch {
        let mut last_phase = [0u32; LANES];
        let mut adopted: LaneMask = 0;
        for (phase, &u) in self.order.iter().enumerate().rev() {
            let kids = self.children_of(u as usize);
            if kids.is_empty() {
                continue;
            }
            let hit = value_masks[kids[0] as usize] & !adopted;
            if hit != 0 {
                let mut bits = hit;
                while bits != 0 {
                    last_phase[bits.trailing_zeros() as usize] = phase as u32;
                    bits &= bits - 1;
                }
                adopted |= hit;
                if adopted == !0 {
                    break;
                }
            }
        }

        let mut last_adoption = vec![0usize; LANES];
        for lane in 0..LANES as u32 {
            let li = lane as usize;
            if adopted >> lane & 1 == 1 {
                last_adoption[li] = self.model_round(model, tapes, last_phase[li] as usize, lane);
            }
            if almost_done >> lane & 1 == 1 && almost_round[li].is_none() {
                almost_round[li] =
                    Some(self.model_round(model, tapes, almost_phase[li] as usize, lane));
            }
        }

        FastSimpleBatch {
            n: self.n,
            m: self.m,
            correct: BatchedInformedSet::from_parts(value_masks, counts),
            almost_round,
            last_adoption,
        }
    }
}

/// Out-of-core Simple broadcasting: the [`FastSimple::run_lane`]
/// algorithm executed against a [`ShardStore`] holding the BFS tree's
/// **child lists** as directed segments (built by
/// `randcast_graph::shard::ShardedBfsTree` without ever materializing
/// the monolithic tree), walking the (level, id)-sorted phase order in
/// maximal same-shard runs — the walk is already segment-ordered, so
/// sharding is a pure access-path change and outcomes are
/// **bit-identical** to [`FastSimple::run_lane`] on the same tree.
/// Vote state (the correct set, the almost-complete crossing, the last
/// adoption round) is node-level and stays resident; only one shard's
/// child rows are in memory at a time.
pub struct ShardedSimple {
    store: ShardStore,
    order: Vec<u32>,
    source: u32,
    n: usize,
    m: usize,
    prefetch: bool,
}

impl ShardedSimple {
    /// Wraps a child-segment store and its (level, id)-sorted phase
    /// order for Simple broadcasting from `source` with `m`-round
    /// phases.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero, `source` is out of range, or the order
    /// does not start at `source` (the phase walk requires the
    /// parents-before-children (level, id) sort, whose first entry is
    /// always the source).
    #[must_use]
    pub fn new(store: ShardStore, order: Vec<u32>, source: u32, m: usize) -> Self {
        assert!(m > 0, "phase length must be positive");
        let n = store.node_count();
        assert!((source as usize) < n, "source out of range");
        assert_eq!(order.first(), Some(&source), "order must start at source");
        ShardedSimple {
            store,
            order,
            source,
            n,
            m,
            prefetch: true,
        }
    }

    /// Enables or disables the segment prefetch pipeline
    /// (outcome-neutral; only meaningful for disk stores).
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// The sequence of shards the (level, id)-sorted phase walk visits,
    /// one entry per maximal same-shard run — the full pass
    /// announcement for the prefetch pipeline.
    fn pass_shards(&self, plan: &ShardPlan) -> Vec<usize> {
        let mut shards = Vec::new();
        for &u in &self.order {
            let s = plan.shard_of(u);
            if shards.last() != Some(&s) {
                shards.push(s);
            }
        }
        shards
    }

    /// The underlying child-segment store.
    #[must_use]
    pub fn store(&self) -> &ShardStore {
        &self.store
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Phase length `m`.
    #[must_use]
    pub fn phase_len(&self) -> usize {
        self.m
    }

    /// Total protocol rounds (`n · m`).
    #[must_use]
    pub fn total_rounds(&self) -> usize {
        self.n * self.m
    }

    /// Scalar lane replay over the shard store; bit-identical to
    /// [`FastSimple::run_lane`] on the same tree. Each maximal
    /// same-shard run of the phase order acquires one segment view;
    /// on disk stores the whole run sequence is announced to the
    /// [`PassLoader`] up front, so the next run's segment read overlaps
    /// the current run's compute. The walk touches every row of every
    /// visited segment, so there is no sparse path here.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] (and friends) if a disk
    /// segment cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or `lane ≥ 64`.
    pub fn run_lane(
        &self,
        p: f64,
        block_seed: u64,
        lane: u32,
    ) -> Result<FastSimpleOutcome, ShardError> {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        assert!((lane as usize) < LANES, "lane out of range");
        let adopt = BatchBernoulli::new(1.0 - p.powi(self.m as i32));
        let tape = BatchTape::new(block_seed, FAULT_STREAM);
        let ln_p = p.ln();
        let n = self.n;
        let plan = self.store.plan().clone();
        let mut loader = PassLoader::new(&self.store, self.prefetch);
        loader.begin_pass(&self.pass_shards(&plan));
        let mut correct = InformedSet::new(n);
        correct.insert(self.source);
        let almost_target = n.saturating_sub(1).max(1);
        let mut almost_round = (correct.count() >= almost_target).then_some(0);
        let mut last_adoption = 0usize;

        let len = self.order.len();
        let mut phase = 0usize;
        while phase < len {
            let s = plan.shard_of(self.order[phase]);
            let view = loader.view_full(s)?;
            while phase < len && view.contains(self.order[phase]) {
                let u = self.order[phase];
                let kids = view.targets_of(u);
                if !kids.is_empty() && correct.contains(u) && adopt.lane(&tape, phase as u64, lane)
                {
                    let t = phase_t(&tape, phase as u64, lane, ln_p, self.m);
                    let round = phase * self.m + t + 1;
                    for &c in kids {
                        correct.insert(c);
                    }
                    last_adoption = round;
                    if almost_round.is_none() && correct.count() >= almost_target {
                        almost_round = Some(round);
                    }
                }
                phase += 1;
            }
        }

        Ok(FastSimpleOutcome {
            n,
            m: self.m,
            almost_round,
            last_adoption,
            correct,
        })
    }

    /// One batched 64-lane block over the shard store — the lane
    /// semantics of [`FastSimple::run_batch`], with every segment read
    /// amortized across all 64 trials. Per-lane outcomes are
    /// byte-identical to 64 scalar [`run_lane`](Self::run_lane) replays
    /// of the same block seed.
    ///
    /// The monolithic batch finds each lane's last adoption with a
    /// *backward* scan over the phase order; out of core that would
    /// re-read every segment in reverse. This walk instead overwrites
    /// `last_phase[lane] = phase` at every effective phase during the
    /// forward pass — the backward scan returns the *maximum* phase
    /// whose `eff` mask has the lane set (children are written exactly
    /// once, by their own parent's phase, so the child mask it reads
    /// *is* that phase's `eff`), and a forward overwrite computes the
    /// same maximum.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] (and friends) if a disk
    /// segment cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    pub fn run_batch(&self, p: f64, block_seed: u64) -> Result<FastSimpleBatch, ShardError> {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        let adopt = BatchBernoulli::new(1.0 - p.powi(self.m as i32));
        let tape = BatchTape::new(block_seed, FAULT_STREAM);
        let ln_p = p.ln();
        let n = self.n;
        let plan = self.store.plan().clone();
        let mut loader = PassLoader::new(&self.store, self.prefetch);
        loader.begin_pass(&self.pass_shards(&plan));
        let mut correct_masks: Vec<LaneMask> = vec![0; n];
        correct_masks[self.source as usize] = !0;
        let mut counts = LaneCounter::new();
        counts.add_masked(!0, 1);
        let almost_target = n.saturating_sub(1).max(1) as u64;
        let mut almost_done: LaneMask = 0;
        let mut almost_phase = [0u32; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        let mut last_phase = [0u32; LANES];
        let mut adopted: LaneMask = 0;

        let len = self.order.len();
        let mut phase = 0usize;
        while phase < len {
            let s = plan.shard_of(self.order[phase]);
            let view = loader.view_full(s)?;
            while phase < len && view.contains(self.order[phase]) {
                let u = self.order[phase];
                let kids = view.targets_of(u);
                if kids.is_empty() {
                    phase += 1;
                    continue;
                }
                let eff = adopt.mask(&tape, phase as u64, correct_masks[u as usize]);
                if eff == 0 {
                    phase += 1;
                    continue;
                }
                // Tree children have unique parents: each child's mask
                // is written exactly once, by its own parent's phase.
                for &c in kids {
                    correct_masks[c as usize] = eff;
                }
                counts.add_masked(eff, kids.len() as u64);
                let mut bits = eff;
                while bits != 0 {
                    last_phase[bits.trailing_zeros() as usize] = phase as u32;
                    bits &= bits - 1;
                }
                adopted |= eff;
                if almost_done != !0 {
                    let crossed = counts.ge_mask(almost_target) & !almost_done;
                    if crossed != 0 {
                        let mut bits = crossed;
                        while bits != 0 {
                            almost_phase[bits.trailing_zeros() as usize] = phase as u32;
                            bits &= bits - 1;
                        }
                        almost_done |= crossed;
                    }
                }
                phase += 1;
            }
        }

        // Lazy `t` extraction for the at most two stat-relevant phases
        // per lane.
        let mut last_adoption = vec![0usize; LANES];
        for lane in 0..LANES as u32 {
            let li = lane as usize;
            if adopted >> lane & 1 == 1 {
                let ph = last_phase[li] as usize;
                last_adoption[li] = ph * self.m + phase_t(&tape, ph as u64, lane, ln_p, self.m) + 1;
            }
            if almost_done >> lane & 1 == 1 && almost_round[li].is_none() {
                let ph = almost_phase[li] as usize;
                almost_round[li] =
                    Some(ph * self.m + phase_t(&tape, ph as u64, lane, ln_p, self.m) + 1);
            }
        }

        Ok(FastSimpleBatch {
            n,
            m: self.m,
            correct: BatchedInformedSet::from_parts(correct_masks, counts),
            almost_round,
            last_adoption,
        })
    }
}

/// Outcome of one batched 64-lane Simple block; per-lane views are
/// byte-identical to the corresponding [`FastSimple::run_lane`] replay.
#[derive(Clone, PartialEq, Debug)]
pub struct FastSimpleBatch {
    n: usize,
    m: usize,
    correct: BatchedInformedSet,
    almost_round: Vec<Option<usize>>,
    last_adoption: Vec<usize>,
}

impl FastSimpleBatch {
    /// Number of nodes in the graph.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds the fixed schedule executes: `n · m`.
    #[must_use]
    pub fn total_rounds(&self) -> usize {
        self.n * self.m
    }

    /// Whether lane `k`'s trial ended with every node correct.
    #[must_use]
    pub fn complete(&self, lane: u32) -> bool {
        self.correct.count(lane) == self.n
    }

    /// Lane `k`'s completion round: `total_rounds` for successful
    /// trials (Simple has no early termination), `None` otherwise.
    #[must_use]
    pub fn completion_round(&self, lane: u32) -> Option<usize> {
        self.complete(lane).then(|| self.total_rounds())
    }

    /// Lane `k`'s first round with an almost-complete (`≥ n − 1`)
    /// correct set.
    #[must_use]
    pub fn almost_complete_round(&self, lane: u32) -> Option<usize> {
        self.almost_round[lane as usize]
    }

    /// Lane `k`'s last successful adoption round (0 when only the
    /// source is correct).
    #[must_use]
    pub fn last_adoption_round(&self, lane: u32) -> usize {
        self.last_adoption[lane as usize]
    }

    /// Lane `k`'s final correct count.
    #[must_use]
    pub fn correct_count(&self, lane: u32) -> usize {
        self.correct.count(lane)
    }

    /// Lane `k`'s final correct fraction.
    #[must_use]
    pub fn correct_fraction(&self, lane: u32) -> f64 {
        self.correct.count(lane) as f64 / self.n as f64
    }

    /// Reconstructs lane `k`'s full scalar outcome — equal to
    /// [`FastSimple::run_lane`] with the same block seed and lane.
    #[must_use]
    pub fn lane_outcome(&self, lane: u32) -> FastSimpleOutcome {
        let mut correct = InformedSet::new(self.n);
        for v in 0..self.n as u32 {
            if self.correct.lane_contains(v, lane) {
                correct.insert(v);
            }
        }
        FastSimpleOutcome {
            n: self.n,
            m: self.m,
            almost_round: self.almost_round[lane as usize],
            last_adoption: self.last_adoption[lane as usize],
            correct,
        }
    }
}

/// Outcome of one fast-path Simple broadcast: the correct set plus
/// derived metrics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FastSimpleOutcome {
    n: usize,
    m: usize,
    correct: InformedSet,
    almost_round: Option<usize>,
    last_adoption: usize,
}

impl FastSimpleOutcome {
    /// Number of nodes in the graph.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The phase length the plan ran with.
    #[must_use]
    pub fn phase_len(&self) -> usize {
        self.m
    }

    /// Rounds the fixed schedule executes: `n · m`.
    #[must_use]
    pub fn total_rounds(&self) -> usize {
        self.n * self.m
    }

    /// Whether every node ended holding the source bit — the paper's
    /// success criterion.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.correct.count() == self.n
    }

    /// The round by which the broadcast was (knowably) complete. Simple
    /// is a fixed-length protocol with no early termination, so this is
    /// exactly [`total_rounds`](Self::total_rounds) for successful
    /// trials and `None` otherwise; the last actual adoption happens at
    /// [`last_adoption_round`](Self::last_adoption_round).
    #[must_use]
    pub fn completion_round(&self) -> Option<usize> {
        self.complete().then(|| self.total_rounds())
    }

    /// The round of the last successful adoption along a correct chain
    /// (0 when only the source is correct) — the transient behind the
    /// fixed schedule.
    #[must_use]
    pub fn last_adoption_round(&self) -> usize {
        self.last_adoption
    }

    /// Number of nodes holding the source bit at the end.
    #[must_use]
    pub fn correct_count(&self) -> usize {
        self.correct.count()
    }

    /// Correct fraction `correct / n` — the Simple sibling of the
    /// flood kernels' informed fraction.
    #[must_use]
    pub fn correct_fraction(&self) -> f64 {
        self.correct.count() as f64 / self.n as f64
    }

    /// Whether node `v` ended holding the source bit.
    #[must_use]
    pub fn is_correct(&self, v: NodeId) -> bool {
        self.correct.contains(u32::from(v))
    }

    /// The first round by which at least `n − 1` nodes held the source
    /// bit — the almost-complete (`1 − 1/n`) metric.
    #[must_use]
    pub fn almost_complete_round(&self) -> Option<usize> {
        self.almost_round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_graph::{generators, Graph, GraphBuilder};

    fn plan(g: &Graph, m: usize) -> FastSimple {
        FastSimple::new(&CsrGraph::from(g), g.node(0), m)
    }

    #[test]
    fn fault_free_broadcast_is_fully_correct() {
        for g in [
            generators::path(9),
            generators::grid(4, 5),
            generators::star(7),
            generators::lower_bound_graph(3),
        ] {
            let fs = plan(&g, 3);
            let out = fs.run(0.0, 1);
            assert!(out.complete());
            assert_eq!(out.correct_count(), g.node_count());
            assert_eq!(out.completion_round(), Some(3 * g.node_count()));
            assert_eq!(out.total_rounds(), 3 * g.node_count());
            // Every adoption happens in the first round of its parent's
            // phase at p = 0.
            assert_eq!(out.last_adoption_round() % 3, 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::grid(6, 6);
        let fs = plan(&g, 4);
        assert_eq!(fs.run(0.6, 9), fs.run(0.6, 9));
        let reference = fs.run(0.9, 0);
        assert!(
            (1..20).any(|seed| fs.run(0.9, seed) != reference),
            "different seeds should (generically) differ"
        );
    }

    #[test]
    fn star_success_rate_matches_analytic() {
        // Star from the center: one internal node, so
        // P(all correct) = 1 − p^m exactly.
        let g = generators::star(6);
        let (p, m) = (0.5, 3);
        let fs = plan(&g, m);
        let trials = 4000u64;
        let ok = (0..trials).filter(|&s| fs.run(p, s).complete()).count();
        let rate = ok as f64 / trials as f64;
        let expected = 1.0 - p.powi(m as i32);
        assert!((rate - expected).abs() < 0.02, "rate {rate} vs {expected}");
    }

    #[test]
    fn path_success_rate_matches_analytic() {
        // On a path every non-final node is internal:
        // P(all correct) = (1 − p^m)^(n−1).
        let (len, p, m) = (8usize, 0.4f64, 2usize);
        let g = generators::path(len);
        let fs = plan(&g, m);
        let trials = 4000u64;
        let ok = (0..trials).filter(|&s| fs.run(p, s).complete()).count();
        let rate = ok as f64 / trials as f64;
        let expected = (1.0 - p.powi(m as i32)).powi(len as i32);
        assert!((rate - expected).abs() < 0.03, "rate {rate} vs {expected}");
    }

    #[test]
    fn correct_count_is_monotone_in_p_per_seed() {
        let g = generators::grid(7, 7);
        let fs = plan(&g, 2);
        for seed in 0..40 {
            let mut prev = usize::MAX;
            for p in [0.0, 0.3, 0.6, 0.9, 0.99] {
                let c = fs.run(p, seed).correct_count();
                assert!(c <= prev, "seed={seed} p={p}: {c} > {prev}");
                prev = c;
            }
        }
    }

    #[test]
    fn disconnected_graph_reports_partial_fraction() {
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1).edge(1, 2).edge(0, 2).edge(3, 4);
        let g = b.finish().unwrap();
        let fs = plan(&g, 4);
        let out = fs.run(0.0, 1);
        assert!(!out.complete());
        assert_eq!(out.completion_round(), None);
        assert_eq!(out.correct_count(), 3);
        assert!((out.correct_fraction() - 0.6).abs() < 1e-12);
        assert!(out.is_correct(g.node(2)));
        assert!(!out.is_correct(g.node(4)));
        assert_eq!(out.almost_complete_round(), None);
        // The schedule length still covers all n nodes.
        assert_eq!(out.total_rounds(), 20);
    }

    #[test]
    fn single_node_graph_is_trivially_complete() {
        let g = generators::path(0);
        let fs = plan(&g, 5);
        let out = fs.run(0.3, 2);
        assert!(out.complete());
        assert_eq!(out.completion_round(), Some(5));
        assert_eq!(out.almost_complete_round(), Some(0));
        assert_eq!(out.last_adoption_round(), 0);
    }

    #[test]
    fn almost_complete_precedes_last_adoption_on_success() {
        let g = generators::balanced_tree(2, 4);
        let fs = plan(&g, 6);
        for seed in 0..20 {
            let out = fs.run(0.3, seed);
            if out.complete() {
                let almost = out
                    .almost_complete_round()
                    .expect("complete implies almost");
                assert!(almost <= out.last_adoption_round());
                assert!(out.last_adoption_round() <= out.total_rounds());
            }
        }
    }

    #[test]
    fn adoption_rounds_sit_inside_the_parent_phase() {
        // With m = 1 the first working transmission must be round
        // phase·m + 1 — i.e. fault-free timing — whenever it works.
        let g = generators::path(10);
        let fs = plan(&g, 1);
        let out = fs.run(0.0, 0);
        assert!(out.complete());
        // Last internal node of the path is v9 (phase 9): adoption at
        // round 10 of the 11-round schedule.
        assert_eq!(out.last_adoption_round(), 10);
    }

    #[test]
    fn csr_and_graph_construction_agree() {
        let csr = generators::gnp_connected_csr(150, 0.03, &mut SmallRng::seed_from_u64(3));
        let g = Graph::from(&csr);
        let a = FastSimple::new(&csr, g.node(0), 3);
        let b = plan(&g, 3);
        for seed in 0..5 {
            assert_eq!(a.run(0.5, seed), b.run(0.5, seed));
        }
    }

    #[test]
    fn batch_lanes_reproduce_scalar_lane_replays() {
        let graphs = [
            generators::grid(5, 5),
            generators::star(9),
            generators::path(11),
            generators::balanced_tree(3, 3),
        ];
        for g in &graphs {
            for m in [1usize, 3] {
                let fs = plan(g, m);
                for p in [0.0, 0.3, 0.76, 0.9] {
                    let seed = 2000 + (p * 100.0) as u64 + m as u64;
                    let batch = fs.run_batch(p, seed);
                    for lane in [0u32, 1, 17, 40, 63] {
                        let scalar = fs.run_lane(p, seed, lane);
                        assert_eq!(
                            batch.lane_outcome(lane),
                            scalar,
                            "n={} m={m} p={p} lane={lane}",
                            g.node_count()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_summary_accessors_match_lane_outcomes() {
        let g = generators::grid(6, 5);
        let fs = plan(&g, 2);
        let batch = fs.run_batch(0.55, 42);
        for lane in 0..LANES as u32 {
            let out = batch.lane_outcome(lane);
            assert_eq!(batch.complete(lane), out.complete());
            assert_eq!(batch.completion_round(lane), out.completion_round());
            assert_eq!(
                batch.almost_complete_round(lane),
                out.almost_complete_round()
            );
            assert_eq!(batch.last_adoption_round(lane), out.last_adoption_round());
            assert_eq!(batch.correct_count(lane), out.correct_count());
        }
    }

    #[test]
    fn batch_handles_edge_case_graphs() {
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1).edge(1, 2).edge(0, 2).edge(3, 4);
        let disconnected = b.finish().unwrap();
        for g in [disconnected, generators::path(0), generators::path(1)] {
            let fs = plan(&g, 4);
            for p in [0.0, 0.5] {
                let batch = fs.run_batch(p, 7);
                for lane in [0u32, 31, 63] {
                    assert_eq!(
                        batch.lane_outcome(lane),
                        fs.run_lane(p, 7, lane),
                        "n={} p={p} lane={lane}",
                        g.node_count()
                    );
                }
            }
        }
    }

    #[test]
    fn lane_replay_success_rate_matches_analytic() {
        // The star's single internal node makes P(complete) = 1 − p^m
        // exactly; the lane replays must hit it too (the batch draw is
        // a different but identically distributed coin stream).
        let g = generators::star(6);
        let (p, m) = (0.5, 3);
        let fs = plan(&g, m);
        let blocks = 64u64;
        let mut ok = 0usize;
        for b in 0..blocks {
            let batch = fs.run_batch(p, b);
            ok += (0..LANES as u32).filter(|&l| batch.complete(l)).count();
        }
        let rate = ok as f64 / (blocks as f64 * LANES as f64);
        let expected = 1.0 - p.powi(m as i32);
        assert!((rate - expected).abs() < 0.02, "rate {rate} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "phase length must be positive")]
    fn zero_phase_len_is_rejected() {
        let g = generators::path(3);
        let _ = plan(&g, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn p_one_is_rejected() {
        let g = generators::path(3);
        let _ = plan(&g, 2).run(1.0, 0);
    }

    #[test]
    fn sharded_lane_and_batch_match_monolithic_exactly() {
        let g = generators::gnp_connected(150, 0.03, &mut rand::rngs::SmallRng::seed_from_u64(13));
        let csr = CsrGraph::from(&g);
        for m in [1usize, 3] {
            let fs = FastSimple::new(&csr, g.node(0), m);
            for shards in [1usize, 2, 3, 7] {
                let plan = ShardPlan::uniform(csr.node_count(), shards);
                for p in [0.0, 0.4, 0.9] {
                    let seed = 17 + shards as u64;
                    assert_eq!(
                        fs.run_batch_sharded(&plan, p, seed),
                        fs.run_batch(p, seed),
                        "batch diverged: m={m} shards={shards} p={p}"
                    );
                    for lane in [0u32, 19, 63] {
                        assert_eq!(
                            fs.run_lane_sharded(&plan, p, seed, lane),
                            fs.run_lane(p, seed, lane),
                            "lane diverged: m={m} shards={shards} p={p} lane={lane}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_core_simple_matches_the_monolithic_lane_replay() {
        use randcast_graph::shard::{default_scratch_dir, ShardedBfsTree, ShardedCsr, SpillSink};
        let g = generators::gnp_connected(130, 0.04, &mut rand::rngs::SmallRng::seed_from_u64(12));
        let csr = CsrGraph::from(&g);
        let n = csr.node_count();
        let m = 4usize;
        let fs = FastSimple::new(&csr, g.node(0), m);
        let plan = ShardPlan::uniform(n, 3);
        // Ram adjacency → disk child segments.
        let adj = ShardStore::Ram(ShardedCsr::split(&csr, plan.clone()));
        let tree = ShardedBfsTree::build(&adj, 0, default_scratch_dir()).expect("tree");
        let (order, children) = tree.into_parts();
        let ram_tree = ShardedSimple::new(ShardStore::Disk(children), order, 0, m);
        // Disk adjacency → disk child segments, exercising the full
        // spill pipeline end to end.
        let mut sink = SpillSink::create(default_scratch_dir(), plan).expect("sink");
        for v in 0..n {
            for &t in csr.neighbors_of(v) {
                if (v as u32) < t {
                    sink.push(v as u64, u64::from(t)).expect("push");
                }
            }
        }
        let disk_adj = ShardStore::Disk(sink.finalize().expect("finalize"));
        let tree2 = ShardedBfsTree::build(&disk_adj, 0, default_scratch_dir()).expect("tree");
        let (order2, children2) = tree2.into_parts();
        let disk_tree = ShardedSimple::new(ShardStore::Disk(children2), order2, 0, m);
        for p in [0.0, 0.5, 0.9] {
            for lane in [0u32, 7, 63] {
                let mono = fs.run_lane(p, 99, lane);
                assert_eq!(
                    ram_tree.run_lane(p, 99, lane).expect("ram tree"),
                    mono,
                    "ram-adjacency tree p={p} lane={lane}"
                );
                assert_eq!(
                    disk_tree.run_lane(p, 99, lane).expect("disk tree"),
                    mono,
                    "disk-adjacency tree p={p} lane={lane}"
                );
            }
        }
    }

    #[test]
    fn out_of_core_simple_batch_and_prefetch_are_byte_invisible() {
        use randcast_graph::shard::{default_scratch_dir, ShardedBfsTree, ShardedCsr};
        let g = generators::gnp_connected(400, 0.02, &mut rand::rngs::SmallRng::seed_from_u64(17));
        let csr = CsrGraph::from(&g);
        let n = csr.node_count();
        let m = 3usize;
        let fs = FastSimple::new(&csr, g.node(0), m);
        let plan = ShardPlan::uniform(n, 3);
        let adj = ShardStore::Ram(ShardedCsr::split(&csr, plan.clone()));
        let tree = ShardedBfsTree::build(&adj, 0, default_scratch_dir()).expect("tree");
        let (order, children) = tree.into_parts();
        let mut simple = ShardedSimple::new(ShardStore::Disk(children), order, 0, m);
        for p in [0.0, 0.5, 0.9] {
            let mono = fs.run_batch(p, 47);
            for prefetch in [true, false] {
                simple = simple.with_prefetch(prefetch);
                assert_eq!(
                    simple.run_batch(p, 47).expect("batch"),
                    mono,
                    "batch diverged: p={p} prefetch={prefetch}"
                );
            }
            for lane in [0u32, 31, 63] {
                assert_eq!(
                    simple.run_lane(p, 47, lane).expect("lane"),
                    mono.lane_outcome(lane),
                    "lane diverged: p={p} lane={lane}"
                );
            }
        }
    }

    use crate::kernel::{
        CorruptionKind, FlipFault, LieOrJamFault, Omission, ThrottledFault, WorstCasePlacement,
    };

    #[test]
    fn model_batch_lanes_reproduce_model_lane_replays() {
        let graphs = [
            generators::grid(5, 5),
            generators::star(9),
            generators::path(11),
            generators::balanced_tree(3, 3),
        ];
        for g in &graphs {
            for m in [1usize, 3, 4] {
                let fs = plan(g, m);
                for p in [0.0, 0.3, 0.76] {
                    let flip = FlipFault::new(p);
                    let lie = LieOrJamFault::new(p);
                    let models: [&dyn FaultModel; 2] = [&flip, &lie];
                    for model in models {
                        let seed = 3000 + (p * 100.0) as u64 + m as u64;
                        let batch = fs.run_batch_model(model, seed);
                        for lane in [0u32, 1, 17, 40, 63] {
                            let scalar = fs.run_lane_model(model, seed, lane);
                            assert_eq!(
                                batch.lane_outcome(lane),
                                scalar,
                                "{} n={} m={m} p={p} lane={lane}",
                                model.name(),
                                g.node_count()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn silent_iid_models_delegate_byte_identically_to_the_omission_kernel() {
        let g = generators::grid(6, 6);
        let fs = plan(&g, 3);
        let om = Omission::new(0.6);
        let throttled = ThrottledFault::try_new(Omission::new(0.9), 0.6).expect("feasible");
        let eff = throttled.iid_rate().expect("iid inner stays iid");
        assert!((eff - 0.6).abs() < 1e-12, "effective rate {eff}");
        for seed in 0..2 {
            assert_eq!(
                fs.run_batch_model(&throttled, seed),
                fs.run_batch(eff, seed)
            );
        }
        for seed in 0..4 {
            assert_eq!(fs.run_batch_model(&om, seed), fs.run_batch(0.6, seed));
            for lane in [0u32, 33] {
                assert_eq!(
                    fs.run_lane_model(&om, seed, lane),
                    fs.run_lane(0.6, seed, lane)
                );
            }
        }
    }

    #[test]
    fn flip_vote_is_exact_and_end_of_phase_at_p_zero() {
        let g = generators::grid(4, 5);
        let fs = plan(&g, 3);
        let out = fs.run_lane_model(&FlipFault::new(0.0), 7, 5);
        assert!(out.complete());
        // Majority votes settle at the end of the parent's phase.
        assert_eq!(out.last_adoption_round() % 3, 0);
    }

    #[test]
    fn throttled_flip_matches_unthrottled_at_full_rate() {
        // keep_prob = 1: every keep coin keeps, so the corrupt sites are
        // exactly the inner model's and outcomes match lane for lane.
        let g = generators::balanced_tree(2, 4);
        let fs = plan(&g, 3);
        let inner = FlipFault::new(0.4);
        let throttled = ThrottledFault::try_new(inner, 0.4).expect("feasible");
        for seed in 0..4 {
            assert_eq!(
                fs.run_batch_model(&inner, seed),
                fs.run_batch_model(&throttled, seed)
            );
        }
    }

    #[test]
    fn placed_silent_faults_sever_exactly_the_placed_subtrees() {
        // Path 0-1-2-3-4 from 0: node 1 has the heaviest subtree, so a
        // 0.25 budget pins it; its transmissions all die and nodes 2..4
        // never hear anything, while node 1 itself still adopts.
        let g = generators::path(4);
        let fs = plan(&g, 3);
        let mut model = WorstCasePlacement::new(0.25, CorruptionKind::Silent);
        fs.preprocess(&mut model);
        assert_eq!(model.placed_count(), 1);
        assert!(model.is_placed(1));
        for seed in 0..3 {
            let out = fs.run_lane_model(&model, seed, 0);
            assert_eq!(out.correct_count(), 2);
            assert!(out.is_correct(g.node(1)));
            assert!(!out.is_correct(g.node(2)));
            // Clean parents adopt at the first round of the phase.
            assert_eq!(out.last_adoption_round() % 3, 1);
            let batch = fs.run_batch_model(&model, seed);
            assert_eq!(batch.lane_outcome(17), fs.run_lane_model(&model, seed, 17));
        }
    }

    #[test]
    fn placed_flip_faults_poison_exactly_the_placed_subtrees() {
        // Same placement under Flip: node 1 adopts correctly but its
        // all-flipped phase hands nodes 2..4 the inverted bit — they
        // end informed yet wrong.
        let g = generators::path(4);
        let fs = plan(&g, 3);
        let mut model = WorstCasePlacement::new(0.25, CorruptionKind::Flip);
        fs.preprocess(&mut model);
        let out = fs.run_lane_model(&model, 0, 0);
        assert_eq!(out.correct_count(), 2);
        assert!(out.is_correct(g.node(1)));
        assert!(!out.is_correct(g.node(4)));
    }

    #[test]
    fn sharded_model_runs_match_monolithic_exactly() {
        let g = generators::gnp_connected(150, 0.03, &mut rand::rngs::SmallRng::seed_from_u64(13));
        let csr = CsrGraph::from(&g);
        let fs = FastSimple::new(&csr, g.node(0), 3);
        let flip = FlipFault::new(0.4);
        let lie = LieOrJamFault::new(0.2);
        let models: [&dyn FaultModel; 2] = [&flip, &lie];
        for shards in [1usize, 2, 3, 7] {
            let plan = ShardPlan::uniform(csr.node_count(), shards);
            for model in models {
                let seed = 17 + shards as u64;
                assert_eq!(
                    fs.run_batch_sharded_model(&plan, model, seed),
                    fs.run_batch_model(model, seed),
                    "batch diverged: {} shards={shards}",
                    model.name()
                );
                for lane in [0u32, 19, 63] {
                    assert_eq!(
                        fs.run_lane_sharded_model(&plan, model, seed, lane),
                        fs.run_lane_model(model, seed, lane),
                        "lane diverged: {} shards={shards} lane={lane}",
                        model.name()
                    );
                }
            }
        }
    }
}
