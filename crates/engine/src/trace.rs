//! Execution tracing via automaton decorators.
//!
//! The engines stay lean; tracing is opt-in by wrapping a node automaton
//! in [`Traced`], which logs every action and reception into a shared
//! [`TraceLog`]. Useful for debugging protocols and for asserting
//! fine-grained timing properties in tests.
//!
//! ```
//! use randcast_engine::fault::FaultConfig;
//! use randcast_engine::mp::{MpNetwork, MpNode, Outgoing};
//! use randcast_engine::trace::{Traced, TraceEvent, TraceLog};
//! use randcast_graph::{generators, NodeId};
//!
//! struct Beep;
//! impl MpNode for Beep {
//!     type Msg = bool;
//!     fn send(&mut self, round: usize) -> Outgoing<bool> {
//!         if round == 0 { Outgoing::Broadcast(true) } else { Outgoing::Silent }
//!     }
//!     fn recv(&mut self, _round: usize, _from: NodeId, _msg: bool) {}
//! }
//!
//! let g = generators::path(1);
//! let log = TraceLog::new();
//! let mut net = MpNetwork::new(&g, FaultConfig::fault_free(), 0, |v| {
//!     Traced::new(v, Beep, log.clone())
//! });
//! net.step();
//! let events = log.events();
//! assert!(matches!(events[0], TraceEvent::MpSend { round: 0, .. }));
//! ```

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use randcast_graph::NodeId;

use crate::mp::{MpNode, Outgoing};
use crate::radio::{RadioAction, RadioNode};

/// One logged event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceEvent<M> {
    /// A message-passing node produced an outgoing intention.
    MpSend {
        /// Emitting node.
        node: NodeId,
        /// Round of the intention.
        round: usize,
        /// Whether anything was sent.
        silent: bool,
    },
    /// A message-passing node received a message.
    MpRecv {
        /// Receiving node.
        node: NodeId,
        /// Round of the delivery.
        round: usize,
        /// Sender.
        from: NodeId,
        /// The delivered message.
        msg: M,
    },
    /// A radio node chose an action.
    RadioAct {
        /// Acting node.
        node: NodeId,
        /// Round of the action.
        round: usize,
        /// Whether it transmitted.
        transmit: bool,
    },
    /// A radio node observed a reception outcome.
    RadioRecv {
        /// Listening node.
        node: NodeId,
        /// Round of the observation.
        round: usize,
        /// What was heard (`None` = silence/collision).
        heard: Option<M>,
    },
}

/// A shared, clonable event log (single-threaded interior mutability —
/// the engines are single-threaded by design).
pub struct TraceLog<M> {
    events: Rc<RefCell<Vec<TraceEvent<M>>>>,
}

impl<M> Clone for TraceLog<M> {
    fn clone(&self) -> Self {
        TraceLog {
            events: Rc::clone(&self.events),
        }
    }
}

impl<M> Default for TraceLog<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> fmt::Debug for TraceLog<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceLog({} events)", self.events.borrow().len())
    }
}

impl<M> TraceLog<M> {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        TraceLog {
            events: Rc::new(RefCell::new(Vec::new())),
        }
    }

    fn push(&self, e: TraceEvent<M>) {
        self.events.borrow_mut().push(e);
    }

    /// A snapshot of all events so far.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent<M>>
    where
        TraceEvent<M>: Clone,
    {
        self.events.borrow().clone()
    }

    /// Number of logged events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
    }
}

/// Decorator logging all of a node's interactions into a [`TraceLog`].
#[derive(Clone, Debug)]
pub struct Traced<P, M> {
    id: NodeId,
    inner: P,
    log: TraceLog<M>,
}

impl<P, M: Clone> Traced<P, M> {
    /// Wraps `inner` (playing node `id`), logging into `log`.
    #[must_use]
    pub fn new(id: NodeId, inner: P, log: TraceLog<M>) -> Self {
        Traced { id, inner, log }
    }

    /// The wrapped automaton.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the automaton.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P, M> MpNode for Traced<P, M>
where
    P: MpNode<Msg = M>,
    M: Clone + Eq + fmt::Debug,
{
    type Msg = M;

    fn send(&mut self, round: usize) -> Outgoing<M> {
        let out = self.inner.send(round);
        self.log.push(TraceEvent::MpSend {
            node: self.id,
            round,
            silent: out.is_silent(),
        });
        out
    }

    fn recv(&mut self, round: usize, from: NodeId, msg: M) {
        self.log.push(TraceEvent::MpRecv {
            node: self.id,
            round,
            from,
            msg: msg.clone(),
        });
        self.inner.recv(round, from, msg);
    }
}

impl<P, M> RadioNode for Traced<P, M>
where
    P: RadioNode<Msg = M>,
    M: Clone + Eq + fmt::Debug,
{
    type Msg = M;

    fn act(&mut self, round: usize) -> RadioAction<M> {
        let action = self.inner.act(round);
        self.log.push(TraceEvent::RadioAct {
            node: self.id,
            round,
            transmit: action.is_transmit(),
        });
        action
    }

    fn recv(&mut self, round: usize, heard: Option<M>) {
        self.log.push(TraceEvent::RadioRecv {
            node: self.id,
            round,
            heard: heard.clone(),
        });
        self.inner.recv(round, heard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::mp::MpNetwork;
    use crate::radio::RadioNetwork;
    use randcast_graph::generators;

    struct Echo {
        have: bool,
    }
    impl MpNode for Echo {
        type Msg = bool;
        fn send(&mut self, _round: usize) -> Outgoing<bool> {
            if self.have {
                Outgoing::Broadcast(true)
            } else {
                Outgoing::Silent
            }
        }
        fn recv(&mut self, _round: usize, _from: NodeId, _msg: bool) {
            self.have = true;
        }
    }
    impl RadioNode for Echo {
        type Msg = bool;
        fn act(&mut self, round: usize) -> RadioAction<bool> {
            if self.have && round == 0 {
                RadioAction::Transmit(true)
            } else {
                RadioAction::Listen
            }
        }
        fn recv(&mut self, _round: usize, heard: Option<bool>) {
            if heard.is_some() {
                self.have = true;
            }
        }
    }

    #[test]
    fn mp_trace_records_sends_and_recvs() {
        let g = generators::path(1);
        let log = TraceLog::new();
        let mut net = MpNetwork::new(&g, FaultConfig::fault_free(), 0, |v| {
            Traced::new(
                v,
                Echo {
                    have: v.index() == 0,
                },
                log.clone(),
            )
        });
        net.run(2);
        let events = log.events();
        // Per round: 2 sends; round 0: 1 recv (0 -> 1); round 1: 2 recvs.
        let sends = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::MpSend { .. }))
            .count();
        let recvs = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::MpRecv { .. }))
            .count();
        assert_eq!(sends, 4);
        assert_eq!(recvs, 3);
        // First event is node 0's round-0 send.
        assert_eq!(
            events[0],
            TraceEvent::MpSend {
                node: g.node(0),
                round: 0,
                silent: false
            }
        );
    }

    #[test]
    fn radio_trace_records_acts_and_outcomes() {
        let g = generators::path(1);
        let log = TraceLog::new();
        let mut net = RadioNetwork::new(&g, FaultConfig::fault_free(), 0, |v| {
            Traced::new(
                v,
                Echo {
                    have: v.index() == 0,
                },
                log.clone(),
            )
        });
        net.step();
        let events = log.events();
        assert!(events.contains(&TraceEvent::RadioAct {
            node: g.node(0),
            round: 0,
            transmit: true
        }));
        assert!(events.contains(&TraceEvent::RadioRecv {
            node: g.node(1),
            round: 0,
            heard: Some(true)
        }));
    }

    #[test]
    fn log_utilities() {
        let log: TraceLog<bool> = TraceLog::new();
        assert!(log.is_empty());
        log.push(TraceEvent::MpSend {
            node: NodeId::new(0),
            round: 0,
            silent: true,
        });
        assert_eq!(log.len(), 1);
        let clone = log.clone();
        clone.clear();
        assert!(log.is_empty(), "clones share the log");
        assert!(!format!("{log:?}").is_empty());
    }

    #[test]
    fn into_inner_round_trips() {
        let t = Traced::new(NodeId::new(3), Echo { have: true }, TraceLog::<bool>::new());
        assert!(t.inner().have);
        assert!(t.into_inner().have);
    }
}
