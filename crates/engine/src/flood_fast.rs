//! A specialized large-`n` fast path for flooding under independent
//! per-(node, step) transmitter faults.
//!
//! The general [`MpNetwork`](crate::mp::MpNetwork) engine pays for its
//! generality on every round: per-node automaton dispatch, intention
//! buffers, and one fault coin for *all* `n` nodes whether or not they
//! have anything to say. Flooding needs none of that — a node's whole
//! behavior is "once informed, transmit to my targets every round until
//! they are all informed", and a round's outcome depends only on which
//! *frontier* transmitters succeed. [`FastFlood`] exploits this on the
//! shared [`kernel`](crate::kernel) substrate:
//!
//! * the informed set is a word-level
//!   [`InformedSet`](crate::kernel::InformedSet) bitmask,
//! * transmission targets are the flat `u32` CSR arrays of a
//!   [`CsrGraph`] (the graph's adjacency, or its
//!   [`bfs_tree`](CsrGraph::bfs_tree) child lists for the paper's
//!   tree-flooding variant) — the engine builds no adjacency of its
//!   own,
//! * fault sampling is the aggregate
//!   [`FaultSampler`](crate::kernel::FaultSampler): one Bernoulli coin
//!   per *frontier* node per round, or a geometric skip between
//!   successful transmitters when `p > 0.75`,
//! * a transmitter leaves the frontier the moment it can no longer
//!   inform anyone, and the run stops as soon as nothing can change.
//!
//! The sampled process is *statistically identical* to running the
//! flooding automaton on `MpNetwork` with omission faults (or any fault
//! kind under the silent adversary): each round, each informed node's
//! transmitter works independently with probability `1 − p`, and a
//! working transmitter informs all of its targets. Only the RNG stream
//! differs, so per-seed outcomes differ while every distribution
//! matches — `crates/core/tests/flood_equivalence.rs` pins this.
//!
//! Every entry point also has a `*_model` sibling parametric in a
//! [`FaultModel`](crate::kernel::FaultModel): `Silent` models (i.i.d.
//! omission, throttled mixtures, worst-case placement) run the same
//! frontier machinery with the model supplying the per-site corruption
//! masks — the [`Omission`](crate::kernel::Omission) instance reads
//! exactly the coin words the hard-wired path read, so the plain entry
//! points stay byte-identical. Corrupted-*value* models (`Flip` /
//! `Lie`, the paper's malicious transmitters) run a deterministic-
//! timing value pass instead: every delivery succeeds, node `v` is
//! informed at its BFS depth, and the outcome tracks which nodes end
//! up *correctly* informed.
//!
//! Unlike the general engine, the fast path is **defined on graphs that
//! are disconnected from the source**: it floods the source's component
//! and reports the informed *fraction* and the time to reach an
//! almost-complete (`1 − 1/n`) informed set, the regime of rapid
//! almost-complete broadcasting. A single trial at `n = 10⁵`, average
//! degree 8, `p = 0.3` runs in well under a second in release mode.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use randcast_graph::shard::{PassLoader, ShardError, ShardPlan, ShardStore, ShardView};
use randcast_graph::{CsrGraph, NodeId};

use crate::kernel::{
    lane_popcounts, planes_add_one_masked, planes_assign, planes_eq_mask, planes_gt_mask,
    planes_le_mask, range_passes, record_crossings, shard_passes, BatchedInformedSet,
    CorruptionKind, FaultModel, FaultSampler, FaultTapes, InformedSet, LaneCounter, LaneMask,
    Omission, ShardFrontier, LANES,
};

/// The fault-coin site of `(node, index)`: the index (a 1-based round
/// for the graph-variant batch, a 0-based attempt number for the
/// tree-variant batch) and a `u32` node id pack losslessly into one
/// `u64`.
fn fault_site(index: usize, v: u32) -> u64 {
    (index as u64) << 32 | u64::from(v)
}

/// Which edges carry the fast flood (mirrors
/// `randcast_core::flood::FloodVariant` without the crate dependency).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FastFloodVariant {
    /// Transmit only to BFS-spanning-tree children (the paper's
    /// analyzed algorithm; children are computed on the source's
    /// component only, so disconnected graphs are fine).
    Tree,
    /// Transmit to all neighbors (dominates tree flooding).
    Graph,
}

/// A compiled fast-path flooding plan: flat CSR target lists plus a
/// horizon. The target arrays come straight from the
/// [`CsrGraph`] / [`CsrTree`](randcast_graph::CsrTree) substrate.
#[derive(Clone, Debug)]
pub struct FastFlood {
    /// `targets[offsets[v]..offsets[v+1]]` are `v`'s transmission
    /// targets.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    source: u32,
    horizon: usize,
    n: usize,
    variant: FastFloodVariant,
    /// Nodes reachable from the source along transmission targets, in
    /// BFS order (parents before children) — computed once at plan
    /// build so every batched block reuses it.
    order: Vec<u32>,
}

impl FastFlood {
    /// Compiles a plan transmitting along the given variant's edges for
    /// `horizon` rounds. A `horizon` of 0 is allowed (the run reports
    /// only the source informed); a graph disconnected from `source` is
    /// allowed (the flood covers the source's component). Takes the
    /// graph by value: the [`FastFloodVariant::Graph`] plan *is* the
    /// CSR arrays, moved in without a copy (clone at the call site to
    /// keep the graph).
    #[must_use]
    pub fn new(csr: CsrGraph, source: NodeId, horizon: usize, variant: FastFloodVariant) -> Self {
        let n = csr.node_count();
        let (offsets, targets) = match variant {
            FastFloodVariant::Graph => csr.into_raw_parts(),
            FastFloodVariant::Tree => csr.bfs_tree(u32::from(source)).into_children_csr(),
        };
        let mut plan = FastFlood {
            offsets,
            targets,
            source: u32::from(source),
            horizon,
            n,
            variant,
            order: Vec::new(),
        };
        plan.order = plan.compute_bfs_order();
        plan
    }

    /// The horizon (maximum number of rounds executed).
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    fn targets_of(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    fn has_uninformed_target(&self, v: usize, informed: &InformedSet) -> bool {
        self.targets_of(v).iter().any(|&t| !informed.contains(t))
    }

    /// Executes one seeded flood with per-(node, round) transmitter
    /// failure probability `p`, running until the horizon or until no
    /// further round can change anything.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn run(&self, p: f64, seed: u64) -> FastFloodOutcome {
        let sampler = FaultSampler::new(p);
        let n = self.n;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut informed = InformedSet::new(n);
        informed.insert(self.source);
        let mut informed_by_round = Vec::with_capacity(self.horizon.min(1024) + 1);
        informed_by_round.push(1);
        let mut completion_round = (n == 1).then_some(0);

        let mut frontier: Vec<u32> = Vec::new();
        if self.has_uninformed_target(self.source as usize, &informed) {
            frontier.push(self.source);
        }
        let mut next_frontier: Vec<u32> = Vec::new();
        let mut successes: Vec<u32> = Vec::new();

        for round in 1..=self.horizon {
            if frontier.is_empty() {
                break; // nothing can ever change again
            }
            successes.clear();
            next_frontier.clear();
            // Failed transmitters stay in the frontier for next round.
            sampler.partition_into(&mut rng, &frontier, &mut successes, &mut next_frontier);

            for &u in &successes {
                for &t in self.targets_of(u as usize) {
                    if informed.insert(t) {
                        // The newly informed node starts transmitting
                        // next round if it can inform anyone.
                        next_frontier.push(t);
                    }
                }
            }

            informed_by_round.push(informed.count());
            if completion_round.is_none() && informed.count() == n {
                completion_round = Some(round);
            }

            // Keep only transmitters that can still inform someone; a
            // successful node informed all of its targets this round,
            // and a lingering failed node is dropped as soon as others
            // have covered its targets.
            frontier.clear();
            frontier.extend(
                next_frontier
                    .iter()
                    .copied()
                    .filter(|&u| self.has_uninformed_target(u as usize, &informed)),
            );
        }

        FastFloodOutcome {
            n,
            horizon: self.horizon,
            completion_round,
            informed_by_round,
            informed,
        }
    }

    /// Scalar replay of lane `lane` of batched block `block_seed`: the
    /// same frontier algorithm as [`run`](Self::run), but every fault
    /// coin is bit `lane` of the site-addressed batch tape instead of a
    /// draw from a sequential RNG. Sites are per-(node, round) for the
    /// graph variant and per-(node, attempt) for the tree variant — the
    /// coins are i.i.d. Bernoulli(`p`) either way, so the sampled
    /// process is statistically identical to [`run`](Self::run), and
    /// the site addressing is what lets
    /// [`run_batch`](Self::run_batch) reproduce this outcome
    /// *exactly*, lane for lane — see
    /// [`FastFloodBatch::lane_outcome`].
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or `lane ≥ 64`.
    #[must_use]
    pub fn run_lane(&self, p: f64, block_seed: u64, lane: u32) -> FastFloodOutcome {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        assert!((lane as usize) < LANES, "lane out of range");
        self.run_lane_silent(&Omission::new(p), &FaultTapes::new(block_seed), lane)
    }

    /// The frontier replay of [`run_lane`](Self::run_lane) generalized
    /// over any `Silent` [`FaultModel`]: a corrupted transmission is
    /// suppressed, everything else is the omission algorithm. The
    /// [`Omission`] instance reads exactly the coin words the hard-wired
    /// path read before the refactor, so the omission entry points stay
    /// byte-identical.
    fn run_lane_silent<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        lane: u32,
    ) -> FastFloodOutcome {
        let n = self.n;
        let mut informed = InformedSet::new(n);
        informed.insert(self.source);
        let mut informed_round = vec![0u32; n];
        let mut informed_by_round = Vec::with_capacity(self.horizon.min(1024) + 1);
        informed_by_round.push(1);
        let mut completion_round = (n == 1).then_some(0);

        let mut frontier: Vec<u32> = Vec::new();
        if self.has_uninformed_target(self.source as usize, &informed) {
            frontier.push(self.source);
        }
        let mut next_frontier: Vec<u32> = Vec::new();

        for round in 1..=self.horizon {
            if frontier.is_empty() {
                break;
            }
            next_frontier.clear();
            for &u in &frontier {
                let site = match self.variant {
                    FastFloodVariant::Graph => fault_site(round, u),
                    // u's first attempt happens the round after it was
                    // informed; index attempts from 0.
                    FastFloodVariant::Tree => {
                        fault_site(round - 1 - informed_round[u as usize] as usize, u)
                    }
                };
                if model.corrupt_lane(tapes, site, u, lane) {
                    // Failed transmitter: stays in the frontier.
                    next_frontier.push(u);
                } else {
                    for &t in self.targets_of(u as usize) {
                        if informed.insert(t) {
                            informed_round[t as usize] = round as u32;
                            next_frontier.push(t);
                        }
                    }
                }
            }
            informed_by_round.push(informed.count());
            if completion_round.is_none() && informed.count() == n {
                completion_round = Some(round);
            }
            frontier.clear();
            frontier.extend(
                next_frontier
                    .iter()
                    .copied()
                    .filter(|&u| self.has_uninformed_target(u as usize, &informed)),
            );
        }

        FastFloodOutcome {
            n,
            horizon: self.horizon,
            completion_round,
            informed_by_round,
            informed,
        }
    }

    /// The nodes reachable from the source along transmission targets,
    /// in BFS order (parents before children for the tree variant).
    /// A lane's frontier is empty exactly when its informed count has
    /// reached this closure's size — the bit-sliced liveness test the
    /// graph-variant batch uses in place of per-lane frontier tracking.
    fn bfs_order(&self) -> &[u32] {
        &self.order
    }

    fn compute_bfs_order(&self) -> Vec<u32> {
        let mut seen = InformedSet::new(self.n);
        seen.insert(self.source);
        let mut order = vec![self.source];
        let mut i = 0;
        while i < order.len() {
            let v = order[i];
            i += 1;
            for &t in self.targets_of(v as usize) {
                if seen.insert(t) {
                    order.push(t);
                }
            }
        }
        order
    }

    /// Runs all 64 trial lanes of block `block_seed` at once: the
    /// informed set is a lane word per node and every fault coin is a
    /// bit-sliced Bernoulli mask covering all lanes that draw it. Lane
    /// `k` of the result is byte-identical to
    /// [`run_lane`](Self::run_lane)`(p, block_seed, k)` — coins are
    /// site-addressed pure functions of the block seed, so the batched
    /// evolution reads exactly the bits the scalar replay reads.
    ///
    /// The tree variant runs round-free: each node's inform round obeys
    /// `s(child) = s(parent) + 1 + Geom(1 − p)`, so one topological
    /// pass resolves the whole block with the per-(node, attempt)
    /// geometric waits drawn as bit-sliced masks. The graph variant
    /// advances the 64-lane union frontier round by round, retiring
    /// lanes whose informed count has reached the source component's
    /// closure size.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn run_batch(&self, p: f64, block_seed: u64) -> FastFloodBatch {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        let model = Omission::new(p);
        let tapes = FaultTapes::new(block_seed);
        match self.variant {
            FastFloodVariant::Tree => self.run_batch_tree(&model, &tapes, self.bfs_order()),
            FastFloodVariant::Graph => self.run_batch_graph(&model, &tapes),
        }
    }

    /// Tree-variant batch backend: one pass over `order` (any
    /// enumeration of the source component with parents before
    /// children — the BFS order, or its shard-grouped permutation),
    /// resolving every node's 64 inform rounds in bit-plane form.
    /// Every output is a per-node value or a multiset statistic, so any
    /// admissible `order` produces bit-identical results.
    ///
    /// Because tree edges have unique parents, all of a node's children
    /// share its success round, so every per-node statistic (informed
    /// counts, max / second-max inform round, uninformed tally)
    /// collapses to one group-level update per *internal* node —
    /// leaves cost a plane copy and nothing else.
    fn run_batch_tree<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        order: &[u32],
    ) -> FastFloodBatch {
        let n = self.n;
        let h = self.horizon;
        let reach = order.len();
        // Sentinel inform round for "not informed within the horizon".
        let never = h as u64 + 1;
        let w = (64 - never.leading_zeros()) as usize;
        let never_template: Vec<u64> = (0..w)
            .map(|i| if never >> i & 1 == 1 { !0u64 } else { 0 })
            .collect();

        // Per-node inform rounds (bit planes), initialized to `never`;
        // the source is informed at round 0.
        let mut s_planes = Vec::with_capacity(n * w);
        for _ in 0..n {
            s_planes.extend_from_slice(&never_template);
        }
        let src = self.source as usize;
        s_planes[src * w..(src + 1) * w].fill(0);

        // Lanes in which each node is informed (within the horizon):
        // exactly its parent's success mask, so it is free to maintain
        // and replaces every `≤ horizon` plane comparison downstream.
        let mut informed_masks = vec![0u64; n];
        informed_masks[src] = !0;
        // Lanes where some eligible node attempted through the horizon
        // without success: their frontier stayed occupied to the end.
        let mut unfinished: LaneMask = 0;

        let mut su_buf = vec![0u64; w];
        // Per-lane success attempt index, accumulated plane-wise inside
        // the attempt loop; re-zeroed (used planes only) after each node.
        let mut a_planes = vec![0u64; w];
        // Internal nodes in BFS order: the reverse stats pass walks
        // exactly these (leaves are accounted through their parents).
        let mut groups: Vec<u32> = Vec::new();
        // Plane index such that values below `2^tight_plane` are at
        // least 65 attempt rounds short of the horizon.
        let tight_plane = if (h as u64) < 65 {
            0
        } else {
            (h as u64 - 64).ilog2() as usize
        };
        // Attempt-accumulator planes updated branch-free each attempt.
        let a_unroll = w.min(3);

        // Forward pass: resolve every internal node's 64 success rounds.
        for &u in order {
            let ui = u as usize;
            let kids = self.targets_of(ui);
            if kids.is_empty() {
                continue;
            }
            groups.push(u);
            if h == 0 || informed_masks[ui] == 0 {
                continue;
            }
            su_buf.copy_from_slice(&s_planes[ui * w..(ui + 1) * w]);
            // `elig`: lanes whose first attempt round s(u) + 1 is
            // within the horizon — informed lanes minus those informed
            // at exactly the last round. `tight`: the eligible lanes
            // that could hit the horizon within the next 64 attempts —
            // while none survive, the per-attempt retirement comparison
            // below is skipped. Both derive from `hi`, the informed
            // lanes with any plane `≥ tight_plane` set: lanes outside
            // it sit at least 65 attempt rounds short of the horizon,
            // so when `hi` is empty (the common case once the horizon
            // comfortably exceeds the inform rounds) the exact
            // equality scan is provably zero and is skipped.
            let informed_u = informed_masks[ui];
            let (elig, tight);
            if (h as u64) < 65 {
                elig = informed_u & !planes_eq_mask(&su_buf, h as u64);
                tight = elig;
            } else {
                let mut hi = 0u64;
                for &pl in &su_buf[tight_plane..] {
                    hi |= pl;
                }
                hi &= informed_u;
                if hi == 0 {
                    elig = informed_u;
                    tight = 0;
                } else {
                    elig = informed_u & !planes_eq_mask(&su_buf, h as u64);
                    tight = elig & hi;
                }
            }
            if elig == 0 {
                continue;
            }
            let mut surviving = elig;
            let mut succeeded: LaneMask = 0;
            let mut a = 0u64;
            while surviving != 0 {
                let fail = model.corrupt_mask(tapes, fault_site(a as usize, u), u, surviving);
                let succ = surviving & !fail;
                succeeded |= succ;
                // Success sets are disjoint across attempts: OR the set
                // bits of `a` into the attempt accumulator and resolve
                // `s + 1 + a` in one ripple add afterwards. The low
                // planes are accumulated branch-free (a zero `succ` or
                // a clear bit of `a` just ORs in zero); eight or more
                // failed attempts at one node are rare enough to branch.
                for (i, pl) in a_planes.iter_mut().enumerate().take(a_unroll) {
                    *pl |= succ & 0u64.wrapping_sub(a >> i & 1);
                }
                if a >> a_unroll != 0 && succ != 0 {
                    let mut bits = a >> a_unroll;
                    while bits != 0 {
                        a_planes[a_unroll + bits.trailing_zeros() as usize] |= succ;
                        bits &= bits - 1;
                    }
                }
                a += 1;
                surviving = fail;
                // Retire lanes whose next attempt round s(u) + 1 + a
                // would pass the horizon. Exact only when needed: lanes
                // outside `tight` cannot retire for at least 64 attempts.
                if surviving != 0 && (a >= 64 || surviving & tight != 0) {
                    surviving = if a as usize > h - 1 {
                        0
                    } else {
                        surviving & planes_le_mask(&su_buf, h as u64 - 1 - a)
                    };
                }
            }
            unfinished |= elig & !succeeded;
            // Children inherit u's success round (only u can inform
            // them: tree edges have unique parents): resolve straight
            // into the first child's planes, siblings copy from it.
            let c0 = kids[0] as usize;
            planes_add_one_masked(
                &mut s_planes[c0 * w..(c0 + 1) * w],
                &su_buf,
                &a_planes,
                succeeded,
                &never_template,
            );
            informed_masks[c0] = succeeded;
            if a > 1 {
                let wa = (64 - (a - 1).leading_zeros()) as usize;
                a_planes[..wa.min(w)].fill(0);
            }
            for &c in &kids[1..] {
                let ci = c as usize * w;
                s_planes.copy_within(c0 * w..(c0 + 1) * w, ci);
                informed_masks[c as usize] = succeeded;
            }
        }

        // Reverse stats pass over the groups. Deep groups carry the
        // largest inform rounds, so visiting them first lets the
        // quick-reject comparison retire almost every later group in a
        // single plane scan.
        // Per-lane reach: lane-wise popcounts over the membership masks
        // (the source's all-ones mask included).
        let counts = LaneCounter::from_counts(&lane_popcounts(&informed_masks));
        // Max / second max (with multiplicity) of the per-lane inform
        // rounds over informed nodes, plus ≥1 / ≥2 uninformed tallies.
        let mut max_r = vec![0u64; w];
        let mut max_r2 = vec![0u64; w];
        let mut uninf1: LaneMask = 0;
        let mut uninf2: LaneMask = 0;
        for &u in groups.iter().rev() {
            let kids = self.targets_of(u as usize);
            let c0 = kids[0] as usize;
            let succ = informed_masks[c0];
            let miss = !succ;
            uninf2 |= if kids.len() >= 2 { miss } else { uninf1 & miss };
            uninf1 |= miss;
            if succ == 0 {
                continue;
            }
            let done_s = &s_planes[c0 * w..(c0 + 1) * w];
            let act = planes_gt_mask(done_s, &max_r2) & succ;
            if act == 0 {
                // done ≤ max2 ≤ max1 in every informed lane: even a
                // multi-child group cannot move either running max.
                continue;
            }
            let ge1 = !planes_gt_mask(&max_r, done_s) & succ;
            if kids.len() >= 2 {
                // A group of ≥ 2 children at or above the max occupies
                // both slots.
                planes_assign(&mut max_r2, done_s, ge1);
            } else {
                planes_assign(&mut max_r2, &max_r, ge1);
            }
            // `done > max2` but below the max: new second max.
            planes_assign(&mut max_r2, done_s, act & !ge1);
            planes_assign(&mut max_r, done_s, ge1);
        }

        let mut completion_round: Vec<Option<usize>> = vec![None; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        let almost_target = n.saturating_sub(1).max(1);
        for lane in 0..LANES as u32 {
            let li = lane as usize;
            let uninformed1 = uninf1 >> lane & 1 == 1;
            let uninformed2 = uninf2 >> lane & 1 == 1;
            if reach == n && !uninformed1 {
                completion_round[li] = Some(LaneCounter::get_in(&max_r, lane) as usize);
            }
            almost_round[li] = if 1 >= almost_target {
                // n ≤ 2: the source alone is already almost-complete.
                Some(0)
            } else if reach == n {
                if !uninformed1 {
                    // Count hits n − 1 when the second-slowest learns.
                    Some(LaneCounter::get_in(&max_r2, lane) as usize)
                } else if !uninformed2 {
                    // Exactly one node missed: count peaks at n − 1
                    // when the slowest informed node learns.
                    Some(LaneCounter::get_in(&max_r, lane) as usize)
                } else {
                    None
                }
            } else if reach == almost_target && !uninformed1 {
                // Exactly n − 1 reachable: all of them must learn.
                Some(LaneCounter::get_in(&max_r, lane) as usize)
            } else {
                None
            };
        }

        FastFloodBatch {
            n,
            horizon: h,
            informed: BatchedInformedSet::from_parts(informed_masks, counts),
            completion_round,
            almost_round,
            curve: BatchCurve::Schedule {
                s_width: w,
                s_planes,
                max_round: max_r,
                unfinished,
            },
        }
    }

    /// Graph-variant batch backend: the 64-lane union frontier advances
    /// round by round; lanes whose informed count has reached the
    /// source component's closure size stop contributing work, and a
    /// stale frontier entry (a lane whose targets were covered by
    /// someone else) only ever performs no-op transmissions before
    /// washing out.
    fn run_batch_graph<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
    ) -> FastFloodBatch {
        let n = self.n;
        let reach = self.bfs_order().len();
        let mut informed = BatchedInformedSet::new(n);
        informed.insert_masked(self.source, !0);
        let almost_target = n.saturating_sub(1).max(1) as u64;

        let mut completion_round: Vec<Option<usize>> = vec![None; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        let mut completed: LaneMask = 0;
        let mut almost_done: LaneMask = 0;
        if n == 1 {
            completed = !0;
            completion_round.fill(Some(0));
        }
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        // Per-round snapshots of the count planes, in one flat arena.
        let plane_width = (usize::BITS - n.leading_zeros()) as usize;
        let mut count_arena: Vec<u64> = Vec::new();
        let mut executed = 0usize;

        // The union frontier: a list of nodes whose `frontier_mask` has
        // at least one live lane in which the node may still transmit.
        // Masks are supersets of the exact per-lane frontiers: a lane
        // stays set after a failed round even if other transmitters
        // informed all the node's targets meanwhile (a pure no-op), and
        // is cleared on success, on lane death, or when the node drains.
        let mut frontier: Vec<u32> = Vec::new();
        let mut frontier_mask = vec![0u64; n];
        let mut in_frontier = vec![false; n];
        if !self.targets_of(self.source as usize).is_empty() {
            frontier.push(self.source);
            frontier_mask[self.source as usize] = !0;
            in_frontier[self.source as usize] = true;
        }
        // Lanes newly informed this round join the frontier only for
        // the *next* round; stage them here.
        let mut pending = vec![0u64; n];
        let mut pending_nodes: Vec<u32> = Vec::new();

        // A lane is live (its replay still executes rounds) while its
        // informed count is below the closure size.
        let mut live: LaneMask = if reach > 1 { !0 } else { 0 };

        for round in 1..=self.horizon {
            if live == 0 {
                break;
            }
            executed += 1;
            pending_nodes.clear();
            let mut changed = false;

            let mut write = 0usize;
            for i in 0..frontier.len() {
                let v = frontier[i];
                let fm = frontier_mask[v as usize] & live;
                if fm == 0 {
                    frontier_mask[v as usize] = 0;
                    in_frontier[v as usize] = false;
                    continue;
                }
                let fail = model.corrupt_mask(tapes, fault_site(round, v), v, fm);
                let succ = fm & !fail;
                if succ != 0 {
                    for &t in self.targets_of(v as usize) {
                        let newly = informed.insert_masked(t, succ);
                        if newly != 0 {
                            changed = true;
                            if pending[t as usize] == 0 {
                                pending_nodes.push(t);
                            }
                            pending[t as usize] |= newly;
                        }
                    }
                }
                // A successful lane informed all of v's targets: v
                // leaves that lane's frontier. Failed lanes stay.
                let keep = fm & fail;
                frontier_mask[v as usize] = keep;
                if keep != 0 {
                    frontier[write] = v;
                    write += 1;
                } else {
                    in_frontier[v as usize] = false;
                }
            }
            frontier.truncate(write);
            for &t in &pending_nodes {
                frontier_mask[t as usize] |= pending[t as usize];
                pending[t as usize] = 0;
                if !in_frontier[t as usize] {
                    in_frontier[t as usize] = true;
                    frontier.push(t);
                }
            }

            count_arena.extend_from_slice(informed.counts().planes());
            count_arena.resize(executed * plane_width, 0);

            if changed {
                let comp = informed.counts().eq_mask(n as u64) & !completed;
                record_crossings(comp, round, &mut completion_round);
                completed |= comp;
                if almost_done != !0 {
                    let almost = informed.counts().ge_mask(almost_target) & !almost_done;
                    record_crossings(almost, round, &mut almost_round);
                    almost_done |= almost;
                }
                live &= !informed.counts().ge_mask(reach as u64);
            }
        }

        FastFloodBatch {
            n,
            horizon: self.horizon,
            informed,
            completion_round,
            almost_round,
            curve: BatchCurve::Rounds {
                reach,
                plane_width,
                count_arena,
                executed,
            },
        }
    }

    /// Scalar lane replay executed shard-at-a-time: the algorithm of
    /// [`run_lane`](Self::run_lane), with the frontier kept as one list
    /// per shard of `plan` so each round touches one shard's CSR rows
    /// at a time (through a [`ShardView`]), merging cross-shard
    /// discoveries into the destination shard's staging list. Coins are
    /// site-addressed pure functions, the round evolution is set-based,
    /// and the round-boundary frontier filter runs against the same
    /// end-of-round informed set — so the outcome is **bit-identical**
    /// to [`run_lane`](Self::run_lane) for every plan
    /// (`crates/core/tests/shard_equivalence.rs` pins it). The
    /// sequential-RNG [`run`](Self::run) has no sharded sibling: its
    /// draws are stream-positional, so any frontier reorder would
    /// change them.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`, `lane ≥ 64`, or the plan covers a
    /// different node count.
    #[must_use]
    pub fn run_lane_sharded(
        &self,
        plan: &ShardPlan,
        p: f64,
        block_seed: u64,
        lane: u32,
    ) -> FastFloodOutcome {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        assert!((lane as usize) < LANES, "lane out of range");
        self.run_lane_sharded_silent(plan, &Omission::new(p), &FaultTapes::new(block_seed), lane)
    }

    /// [`run_lane_sharded`](Self::run_lane_sharded) generalized over
    /// any `Silent` [`FaultModel`] (see
    /// [`run_lane_silent`](Self::run_lane_silent) for the
    /// byte-identity argument).
    fn run_lane_sharded_silent<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        tapes: &FaultTapes,
        lane: u32,
    ) -> FastFloodOutcome {
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        let n = self.n;
        let k = plan.shard_count();
        let mut informed = InformedSet::new(n);
        informed.insert(self.source);
        let mut informed_round = vec![0u32; n];
        let mut informed_by_round = Vec::with_capacity(self.horizon.min(1024) + 1);
        informed_by_round.push(1);
        let mut completion_round = (n == 1).then_some(0);

        let mut frontier = ShardFrontier::new(k);
        let mut staged = ShardFrontier::new(k);
        if self.has_uninformed_target(self.source as usize, &informed) {
            frontier.push(plan.shard_of(self.source), self.source);
        }

        for round in 1..=self.horizon {
            if frontier.is_empty() {
                break;
            }
            for s in 0..k {
                if frontier.shard(s).is_empty() {
                    continue;
                }
                let (start, end) = plan.range(s);
                let view = ShardView::over(&self.offsets, &self.targets, start, end);
                for &u in frontier.shard(s) {
                    let site = match self.variant {
                        FastFloodVariant::Graph => fault_site(round, u),
                        FastFloodVariant::Tree => {
                            fault_site(round - 1 - informed_round[u as usize] as usize, u)
                        }
                    };
                    if model.corrupt_lane(tapes, site, u, lane) {
                        staged.push(s, u);
                    } else {
                        for &t in view.targets_of(u) {
                            if informed.insert(t) {
                                informed_round[t as usize] = round as u32;
                                staged.push(plan.shard_of(t), t);
                            }
                        }
                    }
                }
            }
            informed_by_round.push(informed.count());
            if completion_round.is_none() && informed.count() == n {
                completion_round = Some(round);
            }
            // The monolithic end-of-round filter, shard by shard, using
            // the identical end-of-round informed set.
            for s in 0..k {
                if staged.shard(s).is_empty() {
                    frontier.refill_from(&mut staged, s, |_| true);
                    continue;
                }
                let (start, end) = plan.range(s);
                let view = ShardView::over(&self.offsets, &self.targets, start, end);
                frontier.refill_from(&mut staged, s, |u| {
                    view.targets_of(u).iter().any(|&t| !informed.contains(t))
                });
            }
        }

        FastFloodOutcome {
            n,
            horizon: self.horizon,
            completion_round,
            informed_by_round,
            informed,
        }
    }

    /// The 64-lane batch executed shard-at-a-time; **bit-identical** to
    /// [`run_batch`](Self::run_batch) for every plan. The graph variant
    /// keeps the union frontier as one list per shard and merges the
    /// staged cross-shard lane masks after each round's shard passes;
    /// the tree variant replays the topological resolution over the
    /// (BFS level, shard)-grouped order — parents still precede
    /// children, and every batch output is a per-node value or multiset
    /// statistic, so the grouping cannot change any bit.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or the plan covers a different node
    /// count.
    #[must_use]
    pub fn run_batch_sharded(&self, plan: &ShardPlan, p: f64, block_seed: u64) -> FastFloodBatch {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        let model = Omission::new(p);
        let tapes = FaultTapes::new(block_seed);
        match self.variant {
            FastFloodVariant::Tree => {
                self.run_batch_tree(&model, &tapes, &self.sharded_order(plan))
            }
            FastFloodVariant::Graph => self.run_batch_graph_sharded(plan, &model, &tapes),
        }
    }

    /// The BFS order re-grouped by (level, shard): a stable re-sort
    /// that keeps parents ahead of children (levels ascend) while
    /// making each level's slice contiguous per shard — the
    /// shard-at-a-time iteration of the sharded tree batch.
    fn sharded_order(&self, plan: &ShardPlan) -> Vec<u32> {
        let level = self.bfs_levels();
        let mut order = self.order.clone();
        order.sort_by_key(|&v| (level[v as usize], plan.shard_of(v)));
        order
    }

    /// Per-node BFS depth along transmission targets (`u32::MAX` for
    /// nodes unreachable from the source). First-write-wins over the
    /// BFS order, so graph-variant cross edges cannot inflate a depth —
    /// for trees this is simply the unique root distance.
    fn bfs_levels(&self) -> Vec<u32> {
        let mut level = vec![u32::MAX; self.n];
        level[self.source as usize] = 0;
        for &v in &self.order {
            for &t in self.targets_of(v as usize) {
                if level[t as usize] == u32::MAX {
                    level[t as usize] = level[v as usize] + 1;
                }
            }
        }
        level
    }

    /// Graph-variant sharded batch backend: the
    /// [`run_batch_graph`](Self::run_batch_graph) evolution with the
    /// union frontier kept per shard. Lane-mask accumulation
    /// (`insert_masked`, pending unions, count planes) is value-based,
    /// so replaying a round's frontier shard-by-shard instead of in
    /// push order leaves every word identical.
    fn run_batch_graph_sharded<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        tapes: &FaultTapes,
    ) -> FastFloodBatch {
        let n = self.n;
        let k = plan.shard_count();
        let reach = self.bfs_order().len();
        let mut informed = BatchedInformedSet::new(n);
        informed.insert_masked(self.source, !0);
        let almost_target = n.saturating_sub(1).max(1) as u64;

        let mut completion_round: Vec<Option<usize>> = vec![None; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        let mut completed: LaneMask = 0;
        let mut almost_done: LaneMask = 0;
        if n == 1 {
            completed = !0;
            completion_round.fill(Some(0));
        }
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        let plane_width = (usize::BITS - n.leading_zeros()) as usize;
        let mut count_arena: Vec<u64> = Vec::new();
        let mut executed = 0usize;

        // The union frontier of the monolithic backend, as one list per
        // shard; masks carry the same superset discipline.
        let mut frontier: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut frontier_mask = vec![0u64; n];
        let mut in_frontier = vec![false; n];
        if !self.targets_of(self.source as usize).is_empty() {
            frontier[plan.shard_of(self.source)].push(self.source);
            frontier_mask[self.source as usize] = !0;
            in_frontier[self.source as usize] = true;
        }
        let mut pending = vec![0u64; n];
        let mut pending_nodes: Vec<u32> = Vec::new();

        let mut live: LaneMask = if reach > 1 { !0 } else { 0 };

        for round in 1..=self.horizon {
            if live == 0 {
                break;
            }
            executed += 1;
            pending_nodes.clear();
            let mut changed = false;

            for (s, list) in frontier.iter_mut().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let (start, end) = plan.range(s);
                let view = ShardView::over(&self.offsets, &self.targets, start, end);
                let mut write = 0usize;
                for i in 0..list.len() {
                    let v = list[i];
                    let fm = frontier_mask[v as usize] & live;
                    if fm == 0 {
                        frontier_mask[v as usize] = 0;
                        in_frontier[v as usize] = false;
                        continue;
                    }
                    let fail = model.corrupt_mask(tapes, fault_site(round, v), v, fm);
                    let succ = fm & !fail;
                    if succ != 0 {
                        for &t in view.targets_of(v) {
                            let newly = informed.insert_masked(t, succ);
                            if newly != 0 {
                                changed = true;
                                if pending[t as usize] == 0 {
                                    pending_nodes.push(t);
                                }
                                pending[t as usize] |= newly;
                            }
                        }
                    }
                    let keep = fm & fail;
                    frontier_mask[v as usize] = keep;
                    if keep != 0 {
                        list[write] = v;
                        write += 1;
                    } else {
                        in_frontier[v as usize] = false;
                    }
                }
                list.truncate(write);
            }
            // Merge the staged cross-shard frontier masks after all of
            // the round's shard passes, exactly as the monolithic
            // backend merges after its single pass.
            for &t in &pending_nodes {
                frontier_mask[t as usize] |= pending[t as usize];
                pending[t as usize] = 0;
                if !in_frontier[t as usize] {
                    in_frontier[t as usize] = true;
                    frontier[plan.shard_of(t)].push(t);
                }
            }

            count_arena.extend_from_slice(informed.counts().planes());
            count_arena.resize(executed * plane_width, 0);

            if changed {
                let comp = informed.counts().eq_mask(n as u64) & !completed;
                record_crossings(comp, round, &mut completion_round);
                completed |= comp;
                if almost_done != !0 {
                    let almost = informed.counts().ge_mask(almost_target) & !almost_done;
                    record_crossings(almost, round, &mut almost_round);
                    almost_done |= almost;
                }
                live &= !informed.counts().ge_mask(reach as u64);
            }
        }

        FastFloodBatch {
            n,
            horizon: self.horizon,
            informed,
            completion_round,
            almost_round,
            curve: BatchCurve::Rounds {
                reach,
                plane_width,
                count_arena,
                executed,
            },
        }
    }

    /// [`run_batch_sharded`](Self::run_batch_sharded) with the round's
    /// independent shard passes fanned across up to `threads` scoped
    /// workers; **byte-identical** to the single-threaded sharded batch
    /// (and hence to the monolithic batch) for every `threads × plan`
    /// combination. Workers only read the round's frozen state and
    /// return their writes as data; the sequential ascending-shard
    /// merge then replays the exact write sequence of the
    /// single-threaded pass (see DESIGN.md, "Parallel shard passes").
    ///
    /// The tree variant's topological resolution is a sequential scan,
    /// so it delegates to the sequential sharded batch unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or the plan covers a different node
    /// count.
    #[must_use]
    pub fn run_batch_sharded_threads(
        &self,
        plan: &ShardPlan,
        p: f64,
        block_seed: u64,
        threads: usize,
    ) -> FastFloodBatch {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        let model = Omission::new(p);
        let tapes = FaultTapes::new(block_seed);
        self.run_batch_sharded_model_threads(plan, &model, &tapes, threads)
    }

    /// [`run_batch_sharded_model`](Self::run_batch_sharded_model) with
    /// thread-parallel shard passes; byte-identical to it for every
    /// thread count. Only the silent graph-variant pass parallelizes —
    /// the tree resolution and the corrupted-value pass are sequential
    /// scans and delegate unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different node count.
    #[must_use]
    pub fn run_batch_sharded_model_threads<M: FaultModel + Sync + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        tapes: &FaultTapes,
        threads: usize,
    ) -> FastFloodBatch {
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        match model.kind() {
            CorruptionKind::Silent => match self.variant {
                FastFloodVariant::Tree => {
                    self.run_batch_tree(model, tapes, &self.sharded_order(plan))
                }
                FastFloodVariant::Graph => {
                    if threads <= 1 || plan.shard_count() <= 1 {
                        self.run_batch_graph_sharded(plan, model, tapes)
                    } else {
                        self.run_batch_graph_sharded_threads(plan, model, tapes, threads)
                    }
                }
            },
            _ => self.run_batch_values(model, tapes, &self.sharded_order(plan)),
        }
    }

    /// Thread-parallel evolution of
    /// [`run_batch_graph_sharded`](Self::run_batch_graph_sharded).
    /// Each worker runs whole shard passes against the round's frozen
    /// state (`frontier_mask` rows of its own shards, the lane masks of
    /// the start-of-round informed set, `live`) and returns deferred
    /// writes: delivery events `(target, success mask)` in visit order,
    /// the retained frontier nodes with their kept masks, and the
    /// dropped nodes. The merge applies shard results in ascending
    /// shard order, so every `insert_masked` and `pending_nodes` push
    /// happens in exactly the single-threaded sequence.
    fn run_batch_graph_sharded_threads<M: FaultModel + Sync + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        tapes: &FaultTapes,
        threads: usize,
    ) -> FastFloodBatch {
        struct ShardPass {
            /// Delivery events bucketed by the *listener's* shard, so
            /// the merge fans out over listener ranges.
            events: Vec<Vec<(u32, LaneMask)>>,
            retained: Vec<(u32, LaneMask)>,
            dropped: Vec<u32>,
        }

        /// One listener shard's slice of the merge state: the event
        /// buckets addressed to it (transmit shards ascending), its
        /// frontier list, and its `split_at_mut` windows of the shared
        /// node-indexed planes.
        struct MergeSlice<'a> {
            buckets: Vec<Vec<(u32, LaneMask)>>,
            retained: Vec<(u32, LaneMask)>,
            dropped: Vec<u32>,
            frontier: Vec<u32>,
            masks: &'a mut [u64],
            pending: &'a mut [u64],
            frontier_mask: &'a mut [u64],
            in_frontier: &'a mut [bool],
        }

        let n = self.n;
        let k = plan.shard_count();
        let reach = self.bfs_order().len();
        let mut informed = BatchedInformedSet::new(n);
        informed.insert_masked(self.source, !0);
        let almost_target = n.saturating_sub(1).max(1) as u64;

        let mut completion_round: Vec<Option<usize>> = vec![None; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        let mut completed: LaneMask = 0;
        let mut almost_done: LaneMask = 0;
        if n == 1 {
            completed = !0;
            completion_round.fill(Some(0));
        }
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        let plane_width = (usize::BITS - n.leading_zeros()) as usize;
        let mut count_arena: Vec<u64> = Vec::new();
        let mut executed = 0usize;

        let mut frontier: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut frontier_mask = vec![0u64; n];
        let mut in_frontier = vec![false; n];
        if !self.targets_of(self.source as usize).is_empty() {
            frontier[plan.shard_of(self.source)].push(self.source);
            frontier_mask[self.source as usize] = !0;
            in_frontier[self.source as usize] = true;
        }
        let mut pending = vec![0u64; n];

        let mut live: LaneMask = if reach > 1 { !0 } else { 0 };

        for round in 1..=self.horizon {
            if live == 0 {
                break;
            }
            executed += 1;
            let mut changed = false;

            // Parallel phase: every read is against state frozen for
            // the round (workers write nothing shared), so shard
            // results are independent of scheduling.
            let passes = {
                let frontier = &frontier;
                let frontier_mask = &frontier_mask;
                let informed = &informed;
                shard_passes(k, threads, |s| {
                    let mut pass = ShardPass {
                        events: vec![Vec::new(); k],
                        retained: Vec::new(),
                        dropped: Vec::new(),
                    };
                    if frontier[s].is_empty() {
                        return pass;
                    }
                    let (start, end) = plan.range(s);
                    let view = ShardView::over(&self.offsets, &self.targets, start, end);
                    for &v in &frontier[s] {
                        let fm = frontier_mask[v as usize] & live;
                        if fm == 0 {
                            pass.dropped.push(v);
                            continue;
                        }
                        let fail = model.corrupt_mask(tapes, fault_site(round, v), v, fm);
                        let succ = fm & !fail;
                        if succ != 0 {
                            for &t in view.targets_of(v) {
                                // Pre-filter against the frozen lanes:
                                // the merge-time newly mask is a subset,
                                // so a frozen-zero event writes nothing
                                // in the single-threaded sequence
                                // either.
                                if succ & !informed.lanes(t) != 0 {
                                    pass.events[plan.shard_of(t)].push((t, succ));
                                }
                            }
                        }
                        let keep = fm & fail;
                        if keep != 0 {
                            pass.retained.push((v, keep));
                        } else {
                            pass.dropped.push(v);
                        }
                    }
                    pass
                })
            };

            // Parallel merge over listener shards: shard `l`'s event
            // stream (transmit shards ascending, emission order within
            // each) is the restriction of the sequential merge order to
            // listeners in `l`, and every plane it writes — informed
            // masks, pending masks, frontier membership — is indexed by
            // nodes of `l` alone, handed out via `split_at_mut`. Each
            // worker accumulates its own LaneCounter delta; the
            // ascending fold below replays the exact counter sums, and
            // the counter is only *observed* after the fold.
            let slices: Vec<MergeSlice> = {
                let (masks, _) = informed.parts_mut();
                let mut masks_rest: &mut [u64] = masks;
                let mut pending_rest: &mut [u64] = &mut pending;
                let mut fmask_rest: &mut [u64] = &mut frontier_mask;
                let mut infr_rest: &mut [bool] = &mut in_frontier;
                let mut slices: Vec<MergeSlice> = Vec::with_capacity(k);
                for (s, list) in frontier.iter_mut().enumerate() {
                    let (start, end) = plan.range(s);
                    let rows = (end - start) as usize;
                    let (masks, m_rest) = std::mem::take(&mut masks_rest).split_at_mut(rows);
                    let (pending, p_rest) = std::mem::take(&mut pending_rest).split_at_mut(rows);
                    let (frontier_mask, f_rest) =
                        std::mem::take(&mut fmask_rest).split_at_mut(rows);
                    let (in_frontier, i_rest) = std::mem::take(&mut infr_rest).split_at_mut(rows);
                    masks_rest = m_rest;
                    pending_rest = p_rest;
                    fmask_rest = f_rest;
                    infr_rest = i_rest;
                    slices.push(MergeSlice {
                        buckets: Vec::with_capacity(k),
                        retained: Vec::new(),
                        dropped: Vec::new(),
                        frontier: std::mem::take(list),
                        masks,
                        pending,
                        frontier_mask,
                        in_frontier,
                    });
                }
                for (s, pass) in passes.into_iter().enumerate() {
                    for (l, bucket) in pass.events.into_iter().enumerate() {
                        slices[l].buckets.push(bucket);
                    }
                    slices[s].retained = pass.retained;
                    slices[s].dropped = pass.dropped;
                }
                slices
            };
            let merged = range_passes(slices, threads, |l, mut slice| {
                let (start, _) = plan.range(l);
                slice.frontier.clear();
                for &(v, keep) in &slice.retained {
                    slice.frontier_mask[(v - start) as usize] = keep;
                    slice.frontier.push(v);
                }
                for &v in &slice.dropped {
                    slice.frontier_mask[(v - start) as usize] = 0;
                    slice.in_frontier[(v - start) as usize] = false;
                }
                let mut delta = LaneCounter::new();
                let mut changed = false;
                let mut pending_nodes: Vec<u32> = Vec::new();
                for bucket in &slice.buckets {
                    for &(t, succ) in bucket {
                        let ti = (t - start) as usize;
                        let newly = succ & !slice.masks[ti];
                        if newly != 0 {
                            slice.masks[ti] |= newly;
                            delta.add_masked(newly, 1);
                            changed = true;
                            if slice.pending[ti] == 0 {
                                pending_nodes.push(t);
                            }
                            slice.pending[ti] |= newly;
                        }
                    }
                }
                for &t in &pending_nodes {
                    let ti = (t - start) as usize;
                    slice.frontier_mask[ti] |= slice.pending[ti];
                    slice.pending[ti] = 0;
                    if !slice.in_frontier[ti] {
                        slice.in_frontier[ti] = true;
                        slice.frontier.push(t);
                    }
                }
                (slice.frontier, delta, changed)
            });
            {
                let (_, counts) = informed.parts_mut();
                for (list, (new_list, delta, shard_changed)) in frontier.iter_mut().zip(merged) {
                    *list = new_list;
                    counts.add_counter(&delta);
                    changed |= shard_changed;
                }
            }

            count_arena.extend_from_slice(informed.counts().planes());
            count_arena.resize(executed * plane_width, 0);

            if changed {
                let comp = informed.counts().eq_mask(n as u64) & !completed;
                record_crossings(comp, round, &mut completion_round);
                completed |= comp;
                if almost_done != !0 {
                    let almost = informed.counts().ge_mask(almost_target) & !almost_done;
                    record_crossings(almost, round, &mut almost_round);
                    almost_done |= almost;
                }
                live &= !informed.counts().ge_mask(reach as u64);
            }
        }

        FastFloodBatch {
            n,
            horizon: self.horizon,
            informed,
            completion_round,
            almost_round,
            curve: BatchCurve::Rounds {
                reach,
                plane_width,
                count_arena,
                executed,
            },
        }
    }

    /// Runs the model's placement preprocessing against this plan's CSR
    /// arrays — the BFS-tree child lists for the tree variant, the full
    /// adjacency for the graph variant. Call once per plan before any
    /// `*_model` run of a placement-based model.
    pub fn preprocess<M: FaultModel + ?Sized>(&self, model: &mut M) {
        match self.variant {
            FastFloodVariant::Tree => {
                model.preprocess_tree(&self.offsets, &self.targets, &self.order, self.source);
            }
            FastFloodVariant::Graph => {
                model.preprocess_graph(&self.offsets, &self.targets, self.source);
            }
        }
    }

    /// [`run_lane`](Self::run_lane) under an arbitrary [`FaultModel`].
    /// `Silent` models run the frontier replay (byte-identical to the
    /// omission path for [`Omission`]); corrupted-value models
    /// (`Flip` / `Lie`) run the deterministic-timing value pass — every
    /// transmission delivers, so node `v` is informed exactly at its
    /// BFS depth, and the adversary decides which lanes receive the
    /// *correct* value. The outcome's informed set and growth curve
    /// then track the **correctly informed** nodes.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64`.
    #[must_use]
    pub fn run_lane_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        lane: u32,
    ) -> FastFloodOutcome {
        assert!((lane as usize) < LANES, "lane out of range");
        match model.kind() {
            CorruptionKind::Silent => self.run_lane_silent(model, tapes, lane),
            _ => self.run_lane_values(model, tapes, lane),
        }
    }

    /// [`run_batch`](Self::run_batch) under an arbitrary
    /// [`FaultModel`]; lane `k` is byte-identical to
    /// [`run_lane_model`](Self::run_lane_model)`(model, tapes, k)`.
    /// See [`run_lane_model`](Self::run_lane_model) for the
    /// corrupted-value semantics.
    #[must_use]
    pub fn run_batch_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
    ) -> FastFloodBatch {
        match model.kind() {
            CorruptionKind::Silent => match self.variant {
                FastFloodVariant::Tree => self.run_batch_tree(model, tapes, self.bfs_order()),
                FastFloodVariant::Graph => self.run_batch_graph(model, tapes),
            },
            _ => self.run_batch_values(model, tapes, self.bfs_order()),
        }
    }

    /// [`run_lane_sharded`](Self::run_lane_sharded) under an arbitrary
    /// [`FaultModel`]; bit-identical to
    /// [`run_lane_model`](Self::run_lane_model) for every plan. A
    /// corrupted-value model has deterministic timing — the value pass
    /// touches each CSR row once and its outputs are per-node values,
    /// so there is nothing to shard and the plan only checks shape.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64` or the plan covers a different node count.
    #[must_use]
    pub fn run_lane_sharded_model<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        tapes: &FaultTapes,
        lane: u32,
    ) -> FastFloodOutcome {
        assert!((lane as usize) < LANES, "lane out of range");
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        match model.kind() {
            CorruptionKind::Silent => self.run_lane_sharded_silent(plan, model, tapes, lane),
            _ => self.run_lane_values(model, tapes, lane),
        }
    }

    /// [`run_batch_sharded`](Self::run_batch_sharded) under an
    /// arbitrary [`FaultModel`]; bit-identical to
    /// [`run_batch_model`](Self::run_batch_model) for every plan. The
    /// corrupted-value pass replays over the (level, shard)-grouped
    /// order: contributions compose by lane-mask AND and the counting
    /// pass is per level, so the grouping cannot change any bit.
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different node count.
    #[must_use]
    pub fn run_batch_sharded_model<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        tapes: &FaultTapes,
    ) -> FastFloodBatch {
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        match model.kind() {
            CorruptionKind::Silent => match self.variant {
                FastFloodVariant::Tree => {
                    self.run_batch_tree(model, tapes, &self.sharded_order(plan))
                }
                FastFloodVariant::Graph => self.run_batch_graph_sharded(plan, model, tapes),
            },
            _ => self.run_batch_values(model, tapes, &self.sharded_order(plan)),
        }
    }

    /// Corrupted-value scalar backend: deliveries always succeed, so
    /// timing is the deterministic BFS schedule and only message
    /// *values* are at stake. Node `t` at depth `d` hears all of its
    /// depth-`d − 1` neighbors simultaneously at round `d` and ends up
    /// correctly informed iff every one of them delivered the true
    /// value — a `Flip` transmitter delivers its own value XOR the
    /// corruption coin, a `Lie` transmitter delivers the true value
    /// only when uncorrupted and holding it. The returned informed set
    /// and growth curve track the correctly informed nodes (the
    /// quantity the paper's malicious feasibility results are about).
    fn run_lane_values<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        lane: u32,
    ) -> FastFloodOutcome {
        let n = self.n;
        let level = self.bfs_levels();
        let order = self.bfs_order();
        let max_depth = order
            .iter()
            .map(|&v| level[v as usize] as usize)
            .max()
            .unwrap_or(0);
        let levels = max_depth.min(self.horizon);

        // Every reachable node within the horizon is informed at its
        // depth; values start true and parent contributions AND in.
        let mut val = vec![false; n];
        for &v in order {
            if (level[v as usize] as usize) <= levels {
                val[v as usize] = true;
            }
        }
        for &u in order {
            let du = level[u as usize] as usize;
            if du >= levels {
                break; // order is level-sorted: no transmitters left
            }
            let targets = self.targets_of(u as usize);
            if targets.is_empty() {
                continue;
            }
            let corrupt = model.corrupt_lane(tapes, fault_site(du + 1, u), u, lane);
            let c = match model.kind() {
                CorruptionKind::Flip => val[u as usize] ^ corrupt,
                _ => val[u as usize] && !corrupt,
            };
            for &t in targets {
                if level[t as usize] as usize == du + 1 {
                    val[t as usize] &= c;
                }
            }
        }

        let mut informed = InformedSet::new(n);
        informed.insert(self.source);
        let mut informed_by_round = Vec::with_capacity(levels + 1);
        informed_by_round.push(1);
        let mut completion_round = (n == 1).then_some(0);
        let mut count = 1usize;
        let mut i = 1;
        for l in 1..=levels {
            while i < order.len() && level[order[i] as usize] as usize == l {
                let v = order[i];
                if val[v as usize] {
                    informed.insert(v);
                    count += 1;
                }
                i += 1;
            }
            informed_by_round.push(count);
            if completion_round.is_none() && count == n {
                completion_round = Some(l);
            }
        }

        FastFloodOutcome {
            n,
            horizon: self.horizon,
            completion_round,
            informed_by_round,
            informed,
        }
    }

    /// Corrupted-value batch backend: the 64-lane value pass of
    /// [`run_lane_values`](Self::run_lane_values). Contributions are
    /// lane masks composed by AND — commutative, so any level-sorted
    /// `order` (the BFS order or its shard-grouped permutation)
    /// produces bit-identical results. The per-level counting pass
    /// snapshots the correct-count planes in the same arena layout as
    /// the graph-variant silent backend, so
    /// [`FastFloodBatch::lane_outcome`] reconstructs each lane's
    /// correct-count curve unchanged.
    fn run_batch_values<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        order: &[u32],
    ) -> FastFloodBatch {
        let n = self.n;
        let level = self.bfs_levels();
        let reach = order.len();
        let max_depth = order
            .iter()
            .map(|&v| level[v as usize] as usize)
            .max()
            .unwrap_or(0);
        let levels = max_depth.min(self.horizon);

        let mut value_masks = vec![0u64; n];
        for &v in order {
            if (level[v as usize] as usize) <= levels {
                value_masks[v as usize] = !0;
            }
        }
        for &u in order {
            let du = level[u as usize] as usize;
            if du >= levels {
                break;
            }
            let targets = self.targets_of(u as usize);
            if targets.is_empty() {
                continue;
            }
            let corrupt = model.corrupt_mask(tapes, fault_site(du + 1, u), u, !0);
            let c = match model.kind() {
                CorruptionKind::Flip => value_masks[u as usize] ^ corrupt,
                _ => value_masks[u as usize] & !corrupt,
            };
            for &t in targets {
                if level[t as usize] as usize == du + 1 {
                    value_masks[t as usize] &= c;
                }
            }
        }

        let almost_target = n.saturating_sub(1).max(1) as u64;
        let mut completion_round: Vec<Option<usize>> = vec![None; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        let mut completed: LaneMask = 0;
        let mut almost_done: LaneMask = 0;
        if n == 1 {
            completed = !0;
            completion_round.fill(Some(0));
        }
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        let plane_width = (usize::BITS - n.leading_zeros()) as usize;
        let mut count_arena: Vec<u64> = Vec::with_capacity(levels * plane_width);
        let mut counts = LaneCounter::new();
        counts.add_masked(!0, 1); // the source holds the true value everywhere
        let mut i = 1;
        for l in 1..=levels {
            while i < order.len() && level[order[i] as usize] as usize == l {
                counts.add_masked(value_masks[order[i] as usize], 1);
                i += 1;
            }
            count_arena.extend_from_slice(counts.planes());
            count_arena.resize(l * plane_width, 0);
            let comp = counts.eq_mask(n as u64) & !completed;
            record_crossings(comp, l, &mut completion_round);
            completed |= comp;
            if almost_done != !0 {
                let almost = counts.ge_mask(almost_target) & !almost_done;
                record_crossings(almost, l, &mut almost_round);
                almost_done |= almost;
            }
        }

        FastFloodBatch {
            n,
            horizon: self.horizon,
            informed: BatchedInformedSet::from_parts(value_masks, counts),
            completion_round,
            almost_round,
            curve: BatchCurve::Rounds {
                reach,
                plane_width,
                count_arena,
                executed: levels,
            },
        }
    }
}

/// Out-of-core graph-variant flooding: the [`FastFlood::run_lane`]
/// algorithm executed against a [`ShardStore`], loading one shard's
/// CSR rows at a time through a reusable [`ShardScratch`] so peak RSS
/// stays near one shard plus the node-level state — the `n = 10⁸`
/// path. Outcomes are **bit-identical** to [`FastFlood::run_lane`]
/// with [`FastFloodVariant::Graph`] on the same adjacency: the coin
/// tape and sites are the same, and the round evolution is set-based.
///
/// Only the graph variant is offered out of core: the tree variant
/// would first need a whole-graph BFS-tree construction, which defeats
/// the bounded-memory point.
pub struct ShardedFlood {
    store: ShardStore,
    source: u32,
    horizon: usize,
    prefetch: bool,
}

impl ShardedFlood {
    /// Wraps a shard store for flooding from `source` over at most
    /// `horizon` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    #[must_use]
    pub fn new(store: ShardStore, source: u32, horizon: usize) -> Self {
        assert!(
            (source as usize) < store.node_count(),
            "source out of range"
        );
        ShardedFlood {
            store,
            source,
            horizon,
            prefetch: true,
        }
    }

    /// Enables or disables the segment prefetch pipeline
    /// (outcome-neutral; only meaningful for disk stores).
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// The underlying shard store.
    #[must_use]
    pub fn store(&self) -> &ShardStore {
        &self.store
    }

    /// Unwraps the shard store, e.g. to hand the same on-disk segments
    /// to another kernel without rebuilding them.
    #[must_use]
    pub fn into_store(self) -> ShardStore {
        self.store
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.store.node_count()
    }

    /// The horizon (maximum number of rounds executed).
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Scalar lane replay over the shard store; bit-identical to
    /// [`FastFlood::run_lane`] with [`FastFloodVariant::Graph`] on the
    /// same adjacency. Each round makes two shard-at-a-time passes:
    /// one transmitting from the frontier, one re-filtering the staged
    /// frontier against the end-of-round informed set (the monolithic
    /// round-boundary filter, shard by shard). Disk-backed passes are
    /// served by the [`PassLoader`]: full segment reads overlapped with
    /// the previous shard's compute, or coalesced sparse row reads when
    /// a pass touches a small fraction of a shard — both
    /// outcome-invisible.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] (and friends) if a disk
    /// segment cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or `lane ≥ 64`.
    pub fn run_lane(
        &self,
        p: f64,
        block_seed: u64,
        lane: u32,
    ) -> Result<FastFloodOutcome, ShardError> {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        assert!((lane as usize) < LANES, "lane out of range");
        self.run_lane_model(&Omission::new(p), &FaultTapes::new(block_seed), lane)
    }

    /// [`run_lane`](Self::run_lane) under an arbitrary `Silent`
    /// [`FaultModel`]. Run [`FaultModel::preprocess_graph`] against the
    /// in-core CSR before sharding if the model needs placement.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] (and friends) if a disk
    /// segment cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64` or the model is not `Silent` — a
    /// corrupted-value flood has deterministic timing and needs no
    /// out-of-core frontier at all (use
    /// [`FastFlood::run_lane_model`]).
    pub fn run_lane_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        lane: u32,
    ) -> Result<FastFloodOutcome, ShardError> {
        assert!((lane as usize) < LANES, "lane out of range");
        assert!(
            model.kind() == CorruptionKind::Silent,
            "out-of-core flooding supports silent fault models only"
        );
        let plan = self.store.plan().clone();
        let n = plan.node_count();
        let k = plan.shard_count();
        let mut loader = PassLoader::new(&self.store, self.prefetch);
        let mut sorted: Vec<u32> = Vec::new();
        let mut full_pass: Vec<usize> = Vec::new();
        let mut informed = InformedSet::new(n);
        informed.insert(self.source);
        let mut informed_by_round = Vec::with_capacity(self.horizon.min(1024) + 1);
        informed_by_round.push(1);
        let mut completion_round = (n == 1).then_some(0);

        let mut frontier = ShardFrontier::new(k);
        let mut staged = ShardFrontier::new(k);
        {
            let src_shard = plan.shard_of(self.source);
            let sparse = loader.use_sparse(src_shard, 1);
            if !sparse {
                loader.begin_pass(&[src_shard]);
            }
            sorted.clear();
            sorted.push(self.source);
            let view = loader.view_pass(src_shard, &sorted, sparse)?;
            if view
                .targets_of(self.source)
                .iter()
                .any(|&t| !informed.contains(t))
            {
                frontier.push(src_shard, self.source);
            }
        }

        for round in 1..=self.horizon {
            if frontier.is_empty() {
                break;
            }
            full_pass.clear();
            for s in 0..k {
                let len = frontier.shard(s).len();
                if len > 0 && !loader.use_sparse(s, len) {
                    full_pass.push(s);
                }
            }
            loader.begin_pass(&full_pass);
            for s in 0..k {
                if frontier.shard(s).is_empty() {
                    continue;
                }
                let sparse = loader.use_sparse(s, frontier.shard(s).len());
                if sparse {
                    sorted.clear();
                    sorted.extend_from_slice(frontier.shard(s));
                    sorted.sort_unstable();
                }
                let view = loader.view_pass(s, &sorted, sparse)?;
                for &u in frontier.shard(s) {
                    if model.corrupt_lane(tapes, fault_site(round, u), u, lane) {
                        staged.push(s, u);
                    } else {
                        for &t in view.targets_of(u) {
                            if informed.insert(t) {
                                staged.push(plan.shard_of(t), t);
                            }
                        }
                    }
                }
            }
            informed_by_round.push(informed.count());
            if completion_round.is_none() && informed.count() == n {
                completion_round = Some(round);
            }
            full_pass.clear();
            for s in 0..k {
                let len = staged.shard(s).len();
                if len > 0 && !loader.use_sparse(s, len) {
                    full_pass.push(s);
                }
            }
            loader.begin_pass(&full_pass);
            for s in 0..k {
                if staged.shard(s).is_empty() {
                    frontier.refill_from(&mut staged, s, |_| true);
                    continue;
                }
                let sparse = loader.use_sparse(s, staged.shard(s).len());
                if sparse {
                    sorted.clear();
                    sorted.extend_from_slice(staged.shard(s));
                    sorted.sort_unstable();
                }
                let view = loader.view_pass(s, &sorted, sparse)?;
                frontier.refill_from(&mut staged, s, |u| {
                    view.targets_of(u).iter().any(|&t| !informed.contains(t))
                });
            }
        }

        Ok(FastFloodOutcome {
            n,
            horizon: self.horizon,
            completion_round,
            informed_by_round,
            informed,
        })
    }

    /// One batched 64-lane block over the shard store — the lane
    /// semantics of [`FastFlood::run_batch`] with
    /// [`FastFloodVariant::Graph`], with every segment read amortized
    /// across all 64 trials. `reach` is the size of the source's
    /// component (e.g. [`ShardedBfsTree::reachable`]
    /// (randcast_graph::shard::ShardedBfsTree::reachable)): the batch
    /// needs it to retire lanes whose replay can no longer change,
    /// exactly as the in-RAM batch derives it from its own BFS order.
    /// Per-lane outcomes are byte-identical to 64 scalar
    /// [`run_lane`](Self::run_lane) replays of the same block seed.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] (and friends) if a disk
    /// segment cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    pub fn run_batch(
        &self,
        p: f64,
        block_seed: u64,
        reach: usize,
    ) -> Result<FastFloodBatch, ShardError> {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        self.run_batch_model(&Omission::new(p), &FaultTapes::new(block_seed), reach)
    }

    /// [`run_batch`](Self::run_batch) under an arbitrary `Silent`
    /// [`FaultModel`].
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] (and friends) if a disk
    /// segment cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if the model is not `Silent`.
    pub fn run_batch_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        reach: usize,
    ) -> Result<FastFloodBatch, ShardError> {
        assert!(
            model.kind() == CorruptionKind::Silent,
            "out-of-core flooding supports silent fault models only"
        );
        let plan = self.store.plan().clone();
        let n = plan.node_count();
        let k = plan.shard_count();
        let mut loader = PassLoader::new(&self.store, self.prefetch);
        let mut sorted: Vec<u32> = Vec::new();
        let mut full_pass: Vec<usize> = Vec::new();
        let mut informed = BatchedInformedSet::new(n);
        informed.insert_masked(self.source, !0);
        let almost_target = n.saturating_sub(1).max(1) as u64;

        let mut completion_round: Vec<Option<usize>> = vec![None; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        let mut completed: LaneMask = 0;
        let mut almost_done: LaneMask = 0;
        if n == 1 {
            completed = !0;
            completion_round.fill(Some(0));
        }
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        let plane_width = (usize::BITS - n.leading_zeros()) as usize;
        let mut count_arena: Vec<u64> = Vec::new();
        let mut executed = 0usize;

        let mut frontier: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut frontier_mask = vec![0u64; n];
        let mut in_frontier = vec![false; n];
        {
            let src_shard = plan.shard_of(self.source);
            let sparse = loader.use_sparse(src_shard, 1);
            if !sparse {
                loader.begin_pass(&[src_shard]);
            }
            sorted.clear();
            sorted.push(self.source);
            let view = loader.view_pass(src_shard, &sorted, sparse)?;
            if !view.targets_of(self.source).is_empty() {
                frontier[src_shard].push(self.source);
                frontier_mask[self.source as usize] = !0;
                in_frontier[self.source as usize] = true;
            }
        }
        let mut pending = vec![0u64; n];
        let mut pending_nodes: Vec<u32> = Vec::new();

        let mut live: LaneMask = if reach > 1 { !0 } else { 0 };

        for round in 1..=self.horizon {
            if live == 0 {
                break;
            }
            executed += 1;
            pending_nodes.clear();
            let mut changed = false;

            full_pass.clear();
            for (s, list) in frontier.iter().enumerate() {
                if !list.is_empty() && !loader.use_sparse(s, list.len()) {
                    full_pass.push(s);
                }
            }
            loader.begin_pass(&full_pass);
            for (s, list) in frontier.iter_mut().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let sparse = loader.use_sparse(s, list.len());
                if sparse {
                    sorted.clear();
                    sorted.extend_from_slice(list);
                    sorted.sort_unstable();
                }
                let view = loader.view_pass(s, &sorted, sparse)?;
                let mut write = 0usize;
                for i in 0..list.len() {
                    let v = list[i];
                    let fm = frontier_mask[v as usize] & live;
                    if fm == 0 {
                        frontier_mask[v as usize] = 0;
                        in_frontier[v as usize] = false;
                        continue;
                    }
                    let fail = model.corrupt_mask(tapes, fault_site(round, v), v, fm);
                    let succ = fm & !fail;
                    if succ != 0 {
                        for &t in view.targets_of(v) {
                            let newly = informed.insert_masked(t, succ);
                            if newly != 0 {
                                changed = true;
                                if pending[t as usize] == 0 {
                                    pending_nodes.push(t);
                                }
                                pending[t as usize] |= newly;
                            }
                        }
                    }
                    let keep = fm & fail;
                    frontier_mask[v as usize] = keep;
                    if keep != 0 {
                        list[write] = v;
                        write += 1;
                    } else {
                        in_frontier[v as usize] = false;
                    }
                }
                list.truncate(write);
            }
            for &t in &pending_nodes {
                frontier_mask[t as usize] |= pending[t as usize];
                pending[t as usize] = 0;
                if !in_frontier[t as usize] {
                    in_frontier[t as usize] = true;
                    frontier[plan.shard_of(t)].push(t);
                }
            }

            count_arena.extend_from_slice(informed.counts().planes());
            count_arena.resize(executed * plane_width, 0);

            if changed {
                let comp = informed.counts().eq_mask(n as u64) & !completed;
                record_crossings(comp, round, &mut completion_round);
                completed |= comp;
                if almost_done != !0 {
                    let almost = informed.counts().ge_mask(almost_target) & !almost_done;
                    record_crossings(almost, round, &mut almost_round);
                    almost_done |= almost;
                }
                live &= !informed.counts().ge_mask(reach as u64);
            }
        }

        Ok(FastFloodBatch {
            n,
            horizon: self.horizon,
            informed,
            completion_round,
            almost_round,
            curve: BatchCurve::Rounds {
                reach,
                plane_width,
                count_arena,
                executed,
            },
        })
    }
}

/// Backend-specific data for reconstructing per-lane growth curves.
#[derive(Clone, PartialEq, Debug)]
enum BatchCurve {
    /// Graph-variant backend: per-round count-plane snapshots.
    Rounds {
        /// Size of the source's targets-closure component: a lane's
        /// replay stops recording once its count reaches this.
        reach: usize,
        plane_width: usize,
        /// `executed × plane_width` words: the per-lane informed counts
        /// after each executed round.
        count_arena: Vec<u64>,
        executed: usize,
    },
    /// Tree-variant backend: per-node inform rounds in bit-plane form.
    Schedule {
        s_width: usize,
        /// `n × s_width` words: node `v`'s per-lane inform round
        /// (`horizon + 1` = never informed).
        s_planes: Vec<u64>,
        /// Per-lane max inform round over informed nodes: the last
        /// executed round in lanes whose frontier drained in time.
        max_round: Vec<u64>,
        /// Lanes where some node attempted through the horizon without
        /// success: their last executed round is the horizon itself.
        unfinished: LaneMask,
    },
}

/// Outcome of one batched 64-lane flood block; per-lane views are
/// byte-identical to the corresponding [`FastFlood::run_lane`] replay.
#[derive(Clone, PartialEq, Debug)]
pub struct FastFloodBatch {
    n: usize,
    horizon: usize,
    informed: BatchedInformedSet,
    completion_round: Vec<Option<usize>>,
    almost_round: Vec<Option<usize>>,
    curve: BatchCurve,
}

impl FastFloodBatch {
    /// Number of nodes in the graph.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lane `k`'s completion round (`None` if that trial never
    /// completed).
    #[must_use]
    pub fn completion_round(&self, lane: u32) -> Option<usize> {
        self.completion_round[lane as usize]
    }

    /// Lane `k`'s first round with an almost-complete (`≥ n − 1`)
    /// informed set.
    #[must_use]
    pub fn almost_complete_round(&self, lane: u32) -> Option<usize> {
        self.almost_round[lane as usize]
    }

    /// Lane `k`'s final informed count.
    #[must_use]
    pub fn informed_count(&self, lane: u32) -> usize {
        self.informed.count(lane)
    }

    /// Lane `k`'s final informed fraction.
    #[must_use]
    pub fn informed_fraction(&self, lane: u32) -> f64 {
        self.informed.count(lane) as f64 / self.n as f64
    }

    /// Reconstructs lane `k`'s full scalar outcome — equal to
    /// [`FastFlood::run_lane`] with the same block seed and lane.
    #[must_use]
    pub fn lane_outcome(&self, lane: u32) -> FastFloodOutcome {
        let mut informed = InformedSet::new(self.n);
        for v in 0..self.n as u32 {
            if self.informed.lane_contains(v, lane) {
                informed.insert(v);
            }
        }
        let informed_by_round = match &self.curve {
            BatchCurve::Rounds {
                reach,
                plane_width,
                count_arena,
                executed,
            } => {
                let mut curve = vec![1usize];
                let mut prev = 1usize;
                for r in 0..*executed {
                    if prev >= *reach {
                        // An empty frontier never refills: once the
                        // count hits the closure size, the lane's
                        // replay stopped here.
                        break;
                    }
                    let planes = &count_arena[r * plane_width..(r + 1) * plane_width];
                    let count = LaneCounter::get_in(planes, lane) as usize;
                    curve.push(count);
                    prev = count;
                }
                curve
            }
            BatchCurve::Schedule {
                s_width,
                s_planes,
                max_round,
                unfinished,
            } => {
                // Counting sort of the lane's inform rounds: every
                // informed node's round is ≤ the lane's last executed
                // round, so the prefix sums are the growth curve.
                let w = *s_width;
                let last = if unfinished >> lane & 1 == 1 {
                    self.horizon
                } else {
                    LaneCounter::get_in(max_round, lane) as usize
                };
                let mut curve = vec![0usize; last + 1];
                for v in 0..self.n {
                    let s = LaneCounter::get_in(&s_planes[v * w..(v + 1) * w], lane) as usize;
                    if s <= last {
                        curve[s] += 1;
                    }
                }
                for r in 1..=last {
                    curve[r] += curve[r - 1];
                }
                curve
            }
        };
        FastFloodOutcome {
            n: self.n,
            horizon: self.horizon,
            completion_round: self.completion_round[lane as usize],
            informed_by_round,
            informed,
        }
    }
}

/// Outcome of one fast-path flood: the informed set, its growth curve,
/// and derived completion metrics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FastFloodOutcome {
    n: usize,
    horizon: usize,
    informed: InformedSet,
    completion_round: Option<usize>,
    /// `informed_by_round[r]` = nodes informed by the end of round `r`
    /// (`[0] == 1`, the source). The run stops early once nothing can
    /// change, so the vector may be shorter than `horizon + 1`; counts
    /// are constant from its last entry onward.
    informed_by_round: Vec<usize>,
}

impl FastFloodOutcome {
    /// Number of nodes in the graph.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The horizon the plan was allowed to run.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Whether every node (not just the source's component) was
    /// informed within the horizon.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.completion_round.is_some()
    }

    /// The round by which the last node was informed, `None` if the
    /// broadcast never completed (too few rounds, or the graph is
    /// disconnected from the source).
    #[must_use]
    pub fn completion_round(&self) -> Option<usize> {
        self.completion_round
    }

    /// Number of informed nodes at the end of the run.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.count()
    }

    /// Informed fraction `informed / n` at the end of the run.
    #[must_use]
    pub fn informed_fraction(&self) -> f64 {
        self.informed.count() as f64 / self.n as f64
    }

    /// Whether node `v` ended the run informed.
    #[must_use]
    pub fn is_informed(&self, v: NodeId) -> bool {
        self.informed.contains(u32::from(v))
    }

    /// The per-round cumulative informed counts (see the field docs).
    #[must_use]
    pub fn informed_by_round(&self) -> &[usize] {
        &self.informed_by_round
    }

    /// The first round by which at least `count` nodes were informed.
    #[must_use]
    pub fn round_reaching(&self, count: usize) -> Option<usize> {
        self.informed_by_round.iter().position(|&c| c >= count)
    }

    /// The first round by which an *almost-complete* set — at least
    /// `⌈(1 − 1/n)·n⌉ = n − 1` nodes — was informed; the metric of the
    /// rapid almost-complete broadcasting regime.
    #[must_use]
    pub fn almost_complete_round(&self) -> Option<usize> {
        self.round_reaching(self.n.saturating_sub(1).max(1))
    }

    /// The first round by which at least `frac · n` nodes (rounded up)
    /// were informed.
    ///
    /// # Panics
    ///
    /// Panics if `frac ∉ [0, 1]`.
    #[must_use]
    pub fn time_to_fraction(&self, frac: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&frac), "fraction out of range");
        let target = (frac * self.n as f64).ceil() as usize;
        self.round_reaching(target.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_graph::{generators, traversal, Graph, GraphBuilder};

    fn plan(g: &Graph, horizon: usize, variant: FastFloodVariant) -> FastFlood {
        FastFlood::new(CsrGraph::from(g), g.node(0), horizon, variant)
    }

    #[test]
    fn fault_free_tree_flood_takes_exactly_the_radius() {
        let g = generators::path(7);
        let ff = plan(&g, 32, FastFloodVariant::Tree);
        let out = ff.run(0.0, 1);
        assert!(out.complete());
        assert_eq!(out.completion_round(), Some(7));
        assert_eq!(out.informed_by_round(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn fault_free_graph_flood_matches_bfs_layers() {
        let g = generators::grid(5, 7);
        let d = traversal::radius_from(&g, g.node(0));
        let ff = plan(&g, 100, FastFloodVariant::Graph);
        let out = ff.run(0.0, 3);
        assert_eq!(out.completion_round(), Some(d));
        // Each round informs exactly the next BFS layer.
        let layers = traversal::bfs_layers(&g, g.node(0));
        let mut cumulative = 0;
        for (r, layer) in layers.iter().enumerate() {
            cumulative += layer.len();
            assert_eq!(out.informed_by_round()[r], cumulative, "round {r}");
        }
    }

    #[test]
    fn informed_counts_are_monotone_and_bounded() {
        let g = generators::gnp_connected(300, 0.02, &mut rand::rngs::SmallRng::seed_from_u64(5));
        for p in [0.1, 0.5, 0.9] {
            let ff = plan(&g, 400, FastFloodVariant::Graph);
            let out = ff.run(p, 11);
            let counts = out.informed_by_round();
            assert!(counts.windows(2).all(|w| w[0] <= w[1]), "p={p}");
            assert!(*counts.last().unwrap() <= out.n());
            assert_eq!(*counts.last().unwrap(), out.informed_count());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::grid(9, 9);
        let ff = plan(&g, 200, FastFloodVariant::Tree);
        assert_eq!(ff.run(0.4, 7), ff.run(0.4, 7));
        assert_ne!(
            ff.run(0.4, 7).informed_by_round(),
            ff.run(0.4, 8).informed_by_round(),
            "different seeds should (generically) differ"
        );
    }

    #[test]
    fn csr_and_graph_construction_agree() {
        // The CSR-direct generator path must compile to the same plan
        // (and hence bit-identical runs) as Graph conversion.
        let csr =
            generators::gnp_connected_csr(200, 0.03, &mut rand::rngs::SmallRng::seed_from_u64(9));
        let g = Graph::from(&csr);
        for variant in [FastFloodVariant::Tree, FastFloodVariant::Graph] {
            let a = FastFlood::new(csr.clone(), g.node(0), 300, variant);
            let b = plan(&g, 300, variant);
            for seed in 0..5 {
                assert_eq!(a.run(0.4, seed), b.run(0.4, seed), "{variant:?}");
            }
        }
    }

    #[test]
    fn sparse_and_dense_samplers_agree_statistically() {
        // p just below and above the 0.75 sampler switch must produce
        // comparable completion-time distributions; calibrate both
        // against the same graph and compare means loosely.
        let g = generators::path(12);
        let trials = 400u64;
        let mean = |p: f64| {
            let ff = plan(&g, 2000, FastFloodVariant::Tree);
            let total: usize = (0..trials)
                .map(|s| ff.run(p, s).completion_round().expect("horizon ample"))
                .sum();
            total as f64 / trials as f64
        };
        // Expected completion ~ sum of 12 geometric(1-p) waits; the two
        // sampling paths sit on either side of the switch.
        let (m_dense, m_sparse) = (mean(0.74), mean(0.76));
        let expected_dense = 12.0 / (1.0 - 0.74);
        let expected_sparse = 12.0 / (1.0 - 0.76);
        assert!(
            (m_dense - expected_dense).abs() < 0.12 * expected_dense,
            "dense mean {m_dense} vs {expected_dense}"
        );
        assert!(
            (m_sparse - expected_sparse).abs() < 0.12 * expected_sparse,
            "sparse mean {m_sparse} vs {expected_sparse}"
        );
    }

    #[test]
    fn disconnected_graph_reports_partial_fraction() {
        // Two components: a triangle with the source and an isolated
        // edge.
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1).edge(1, 2).edge(0, 2).edge(3, 4);
        let g = b.finish().unwrap();
        for variant in [FastFloodVariant::Tree, FastFloodVariant::Graph] {
            let ff = plan(&g, 50, variant);
            let out = ff.run(0.0, 1);
            assert!(!out.complete(), "{variant:?}");
            assert_eq!(out.informed_count(), 3);
            assert!((out.informed_fraction() - 0.6).abs() < 1e-12);
            assert!(out.is_informed(g.node(2)));
            assert!(!out.is_informed(g.node(3)));
            // Almost-complete (n−1 = 4) is never reached either.
            assert_eq!(out.almost_complete_round(), None);
            // But 60% is reached at round 1.
            assert_eq!(out.time_to_fraction(0.6), Some(1));
        }
    }

    #[test]
    fn short_horizon_leaves_fraction_partial() {
        let g = generators::path(20);
        let ff = plan(&g, 5, FastFloodVariant::Tree);
        let out = ff.run(0.0, 0);
        assert!(!out.complete());
        assert_eq!(out.informed_count(), 6);
        assert_eq!(out.round_reaching(6), Some(5));
        assert_eq!(out.round_reaching(7), None);
    }

    #[test]
    fn single_node_graph_is_complete_at_round_zero() {
        let g = generators::path(0);
        let ff = plan(&g, 4, FastFloodVariant::Graph);
        let out = ff.run(0.3, 9);
        assert!(out.complete());
        assert_eq!(out.completion_round(), Some(0));
        assert_eq!(out.almost_complete_round(), Some(0));
    }

    #[test]
    fn high_p_completes_eventually() {
        let g = generators::star(8);
        let ff = FastFlood::new(CsrGraph::from(&g), g.node(1), 4000, FastFloodVariant::Graph);
        let mut completed = 0;
        for seed in 0..20 {
            completed += usize::from(ff.run(0.95, seed).complete());
        }
        assert_eq!(completed, 20);
    }

    #[test]
    fn tree_variant_from_non_source_root() {
        // Source at a leaf: the BFS tree re-roots there.
        let g = generators::star(5);
        let ff = FastFlood::new(CsrGraph::from(&g), g.node(3), 50, FastFloodVariant::Tree);
        let out = ff.run(0.0, 0);
        assert_eq!(out.completion_round(), Some(2));
    }

    #[test]
    fn batch_lanes_match_scalar_lane_replay_exactly() {
        let g = generators::gnp_connected(120, 0.03, &mut rand::rngs::SmallRng::seed_from_u64(2));
        for variant in [FastFloodVariant::Tree, FastFloodVariant::Graph] {
            let ff = plan(&g, 300, variant);
            for p in [0.0, 0.3, 0.76, 0.9] {
                for block_seed in [0u64, 1, 0xDEAD_BEEF] {
                    let batch = ff.run_batch(p, block_seed);
                    for lane in 0..64u32 {
                        assert_eq!(
                            batch.lane_outcome(lane),
                            ff.run_lane(p, block_seed, lane),
                            "{variant:?} p={p} seed={block_seed} lane={lane}"
                        );
                        assert_eq!(
                            batch.completion_round(lane),
                            batch.lane_outcome(lane).completion_round()
                        );
                        assert_eq!(
                            batch.almost_complete_round(lane),
                            batch.lane_outcome(lane).almost_complete_round(),
                            "{variant:?} p={p} seed={block_seed} lane={lane}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_handles_disconnection_short_horizons_and_single_nodes() {
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1).edge(1, 2).edge(0, 2).edge(3, 4);
        let g = b.finish().unwrap();
        let ff = plan(&g, 50, FastFloodVariant::Graph);
        let batch = ff.run_batch(0.3, 9);
        for lane in 0..64u32 {
            assert_eq!(batch.lane_outcome(lane), ff.run_lane(0.3, 9, lane));
            assert_eq!(batch.informed_count(lane), 3);
            assert!(!batch.lane_outcome(lane).complete());
        }

        let short = plan(&generators::path(20), 5, FastFloodVariant::Tree);
        let batch = short.run_batch(0.5, 4);
        for lane in 0..64u32 {
            assert_eq!(batch.lane_outcome(lane), short.run_lane(0.5, 4, lane));
        }

        let single = plan(&generators::path(0), 4, FastFloodVariant::Graph);
        let batch = single.run_batch(0.3, 1);
        for lane in 0..64u32 {
            assert_eq!(batch.lane_outcome(lane), single.run_lane(0.3, 1, lane));
            assert_eq!(batch.completion_round(lane), Some(0));
            assert_eq!(batch.almost_complete_round(lane), Some(0));
        }
    }

    #[test]
    fn batch_lane_outcomes_are_independent_of_sibling_lanes() {
        // A lane's coins are site-addressed, so its outcome cannot
        // depend on how many other lanes run or what they do. Compare
        // lane k across two *different* plans' batches sharing the same
        // block seed — the lane replay only depends on (plan, p, seed,
        // lane), which is the same thing run_lane computes.
        let g = generators::grid(6, 6);
        let ff = plan(&g, 120, FastFloodVariant::Graph);
        for lane in [0u32, 13, 63] {
            let a = ff.run_batch(0.4, 77).lane_outcome(lane);
            let b = ff.run_lane(0.4, 77, lane);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sharded_lane_and_batch_match_monolithic_exactly() {
        let g = generators::gnp_connected(140, 0.03, &mut rand::rngs::SmallRng::seed_from_u64(6));
        let csr = CsrGraph::from(&g);
        for variant in [FastFloodVariant::Tree, FastFloodVariant::Graph] {
            let ff = FastFlood::new(csr.clone(), g.node(0), 300, variant);
            for shards in [1usize, 2, 3, 7] {
                let plan = ShardPlan::uniform(csr.node_count(), shards);
                for p in [0.0, 0.4, 0.9] {
                    let seed = 31 + shards as u64;
                    assert_eq!(
                        ff.run_batch_sharded(&plan, p, seed),
                        ff.run_batch(p, seed),
                        "batch diverged: {variant:?} shards={shards} p={p}"
                    );
                    for lane in [0u32, 19, 63] {
                        assert_eq!(
                            ff.run_lane_sharded(&plan, p, seed, lane),
                            ff.run_lane(p, seed, lane),
                            "lane diverged: {variant:?} shards={shards} p={p} lane={lane}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn thread_parallel_sharded_batch_matches_monolithic_exactly() {
        let g = generators::gnp_connected(140, 0.03, &mut rand::rngs::SmallRng::seed_from_u64(6));
        let csr = CsrGraph::from(&g);
        for variant in [FastFloodVariant::Tree, FastFloodVariant::Graph] {
            let ff = FastFlood::new(csr.clone(), g.node(0), 300, variant);
            for shards in [1usize, 2, 3, 7] {
                let plan = ShardPlan::uniform(csr.node_count(), shards);
                for p in [0.0, 0.4, 0.9] {
                    let seed = 131 + shards as u64;
                    let mono = ff.run_batch(p, seed);
                    for threads in [1usize, 2, 4, 9] {
                        assert_eq!(
                            ff.run_batch_sharded_threads(&plan, p, seed, threads),
                            mono,
                            "diverged: {variant:?} shards={shards} threads={threads} p={p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_core_flood_matches_the_monolithic_lane_replay() {
        use randcast_graph::shard::{default_scratch_dir, ShardStore, ShardedCsr, SpillSink};
        let g = generators::gnp_connected(130, 0.04, &mut rand::rngs::SmallRng::seed_from_u64(8));
        let csr = CsrGraph::from(&g);
        let ff = FastFlood::new(csr.clone(), g.node(0), 400, FastFloodVariant::Graph);
        let plan = ShardPlan::uniform(csr.node_count(), 3);

        let ram = ShardedFlood::new(
            ShardStore::Ram(ShardedCsr::split(&csr, plan.clone())),
            0,
            400,
        );
        let mut sink = SpillSink::create(default_scratch_dir(), plan).unwrap();
        for v in 0..csr.node_count() {
            for &t in csr.neighbors_of(v) {
                if (v as u32) < t {
                    sink.push(v as u64, u64::from(t)).unwrap();
                }
            }
        }
        let disk = ShardedFlood::new(ShardStore::Disk(sink.finalize().unwrap()), 0, 400);

        for p in [0.0, 0.5] {
            for lane in [0u32, 7, 63] {
                let reference = ff.run_lane(p, 77, lane);
                assert_eq!(ram.run_lane(p, 77, lane).unwrap(), reference);
                assert_eq!(disk.run_lane(p, 77, lane).unwrap(), reference);
            }
        }
    }

    #[test]
    fn out_of_core_flood_batch_and_prefetch_are_byte_invisible() {
        use randcast_graph::shard::{default_scratch_dir, ShardStore, ShardedCsr, SpillSink};
        // Big enough that one-participant rounds go sparse on disk
        // while bulk rounds take full segment views.
        let g = generators::gnp_connected(900, 0.012, &mut rand::rngs::SmallRng::seed_from_u64(31));
        let csr = CsrGraph::from(&g);
        let n = csr.node_count();
        let ff = FastFlood::new(csr.clone(), g.node(0), 400, FastFloodVariant::Graph);
        let reach = ff.bfs_order().len();
        let mono = ff.run_batch(0.3, 55);
        let plan = ShardPlan::uniform(n, 3);
        let mut sink = SpillSink::create(default_scratch_dir(), plan.clone()).unwrap();
        for v in 0..n {
            for &t in csr.neighbors_of(v) {
                if (v as u32) < t {
                    sink.push(v as u64, u64::from(t)).unwrap();
                }
            }
        }
        let stores = [
            (
                ShardStore::Ram(ShardedCsr::split(&csr, plan.clone())),
                "ram",
            ),
            (ShardStore::Disk(sink.finalize().unwrap()), "disk"),
        ];
        for (store, what) in stores {
            let mut flood = ShardedFlood::new(store, 0, 400);
            for prefetch in [true, false] {
                flood = flood.with_prefetch(prefetch);
                assert_eq!(
                    flood.run_batch(0.3, 55, reach).unwrap(),
                    mono,
                    "{what} batch diverged: prefetch={prefetch}"
                );
                for lane in [0u32, 63] {
                    assert_eq!(
                        flood.run_lane(0.3, 55, lane).unwrap(),
                        mono.lane_outcome(lane),
                        "{what} lane diverged: prefetch={prefetch} lane={lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn silent_models_route_through_the_byte_identical_omission_machinery() {
        let g = generators::gnp_connected(100, 0.03, &mut rand::rngs::SmallRng::seed_from_u64(3));
        for variant in [FastFloodVariant::Tree, FastFloodVariant::Graph] {
            let ff = plan(&g, 250, variant);
            let model = Omission::new(0.4);
            let tapes = FaultTapes::new(99);
            assert_eq!(ff.run_batch_model(&model, &tapes), ff.run_batch(0.4, 99));
            for lane in [0u32, 17, 63] {
                assert_eq!(
                    ff.run_lane_model(&model, &tapes, lane),
                    ff.run_lane(0.4, 99, lane),
                    "{variant:?} lane={lane}"
                );
            }
        }
    }

    #[test]
    fn model_batch_lanes_match_model_lane_replays() {
        use crate::kernel::{FlipFault, LieOrJamFault};
        let g = generators::gnp_connected(90, 0.04, &mut rand::rngs::SmallRng::seed_from_u64(12));
        for variant in [FastFloodVariant::Tree, FastFloodVariant::Graph] {
            let ff = plan(&g, 200, variant);
            for p in [0.0, 0.3, 0.76] {
                let models: [&dyn FaultModel; 2] = [&FlipFault::new(p), &LieOrJamFault::new(p)];
                for model in models {
                    let tapes = FaultTapes::new(41);
                    let batch = ff.run_batch_model(model, &tapes);
                    for lane in [0u32, 5, 31, 63] {
                        assert_eq!(
                            batch.lane_outcome(lane),
                            ff.run_lane_model(model, &tapes, lane),
                            "{variant:?} {} p={p} lane={lane}",
                            model.name()
                        );
                        assert_eq!(
                            batch.completion_round(lane),
                            batch.lane_outcome(lane).completion_round()
                        );
                        assert_eq!(
                            batch.almost_complete_round(lane),
                            batch.lane_outcome(lane).almost_complete_round(),
                            "{variant:?} {} p={p} lane={lane}",
                            model.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn flip_flood_at_p_zero_runs_on_the_exact_bfs_schedule() {
        use crate::kernel::FlipFault;
        let g = generators::grid(5, 7);
        let d = traversal::radius_from(&g, g.node(0));
        let ff = plan(&g, 100, FastFloodVariant::Graph);
        let out = ff.run_lane_model(&FlipFault::new(0.0), &FaultTapes::new(1), 0);
        assert_eq!(out.completion_round(), Some(d));
        let layers = traversal::bfs_layers(&g, g.node(0));
        let mut cumulative = 0;
        for (r, layer) in layers.iter().enumerate() {
            cumulative += layer.len();
            assert_eq!(out.informed_by_round()[r], cumulative, "round {r}");
        }
    }

    #[test]
    fn sharded_model_runs_match_monolithic_exactly() {
        use crate::kernel::{CorruptionKind, FlipFault, WorstCasePlacement};
        let g = generators::gnp_connected(110, 0.04, &mut rand::rngs::SmallRng::seed_from_u64(21));
        let csr = CsrGraph::from(&g);
        for variant in [FastFloodVariant::Tree, FastFloodVariant::Graph] {
            let ff = FastFlood::new(csr.clone(), g.node(0), 250, variant);
            let mut placed = WorstCasePlacement::new(0.1, CorruptionKind::Silent);
            ff.preprocess(&mut placed);
            let flip = FlipFault::new(0.35);
            let models: [&dyn FaultModel; 2] = [&placed, &flip];
            let tapes = FaultTapes::new(7);
            for model in models {
                for shards in [1usize, 2, 3, 7] {
                    let sp = ShardPlan::uniform(csr.node_count(), shards);
                    assert_eq!(
                        ff.run_batch_sharded_model(&sp, model, &tapes),
                        ff.run_batch_model(model, &tapes),
                        "{variant:?} {} shards={shards}",
                        model.name()
                    );
                    for lane in [0u32, 9, 63] {
                        assert_eq!(
                            ff.run_lane_sharded_model(&sp, model, &tapes, lane),
                            ff.run_lane_model(model, &tapes, lane),
                            "{variant:?} {} shards={shards} lane={lane}",
                            model.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn placed_faults_sever_or_poison_exactly_the_placed_subtrees() {
        use crate::kernel::{CorruptionKind, WorstCasePlacement};
        let g = generators::path(4);
        let ff = plan(&g, 40, FastFloodVariant::Tree);
        let tapes = FaultTapes::new(5);

        // frac 0.25 of the 4 non-source nodes pins node 1, the root of
        // the largest subtree on the path 0 → 1 → 2 → 3 → 4.
        let mut silent = WorstCasePlacement::new(0.25, CorruptionKind::Silent);
        ff.preprocess(&mut silent);
        assert_eq!(silent.placed_count(), 1);
        assert!(silent.is_placed(1));
        let out = ff.run_lane_model(&silent, &tapes, 0);
        // Node 1 hears the source, but its own transmissions all fail:
        // everything behind it stays uninformed.
        assert_eq!(out.informed_count(), 2);
        assert!(!out.complete());

        let mut flip = WorstCasePlacement::new(0.25, CorruptionKind::Flip);
        ff.preprocess(&mut flip);
        let out = ff.run_lane_model(&flip, &tapes, 0);
        // Deliveries all land on the BFS schedule, but everything
        // behind the flipping node hears the wrong value.
        assert_eq!(out.informed_count(), 2);
        assert!(!out.complete());
        assert!(out.is_informed(g.node(1)));
        assert!(!out.is_informed(g.node(2)));
    }
}
