//! A specialized large-`n` fast path for flooding under independent
//! per-(node, step) transmitter faults.
//!
//! The general [`MpNetwork`](crate::mp::MpNetwork) engine pays for its
//! generality on every round: per-node automaton dispatch, intention
//! buffers, and one fault coin for *all* `n` nodes whether or not they
//! have anything to say. Flooding needs none of that — a node's whole
//! behavior is "once informed, transmit to my targets every round until
//! they are all informed", and a round's outcome depends only on which
//! *frontier* transmitters succeed. [`FastFlood`] exploits this on the
//! shared [`kernel`](crate::kernel) substrate:
//!
//! * the informed set is a word-level
//!   [`InformedSet`](crate::kernel::InformedSet) bitmask,
//! * transmission targets are the flat `u32` CSR arrays of a
//!   [`CsrGraph`] (the graph's adjacency, or its
//!   [`bfs_tree`](CsrGraph::bfs_tree) child lists for the paper's
//!   tree-flooding variant) — the engine builds no adjacency of its
//!   own,
//! * fault sampling is the aggregate
//!   [`FaultSampler`](crate::kernel::FaultSampler): one Bernoulli coin
//!   per *frontier* node per round, or a geometric skip between
//!   successful transmitters when `p > 0.75`,
//! * a transmitter leaves the frontier the moment it can no longer
//!   inform anyone, and the run stops as soon as nothing can change.
//!
//! The sampled process is *statistically identical* to running the
//! flooding automaton on `MpNetwork` with omission faults (or any fault
//! kind under the silent adversary): each round, each informed node's
//! transmitter works independently with probability `1 − p`, and a
//! working transmitter informs all of its targets. Only the RNG stream
//! differs, so per-seed outcomes differ while every distribution
//! matches — `crates/core/tests/flood_equivalence.rs` pins this.
//!
//! Unlike the general engine, the fast path is **defined on graphs that
//! are disconnected from the source**: it floods the source's component
//! and reports the informed *fraction* and the time to reach an
//! almost-complete (`1 − 1/n`) informed set, the regime of rapid
//! almost-complete broadcasting. A single trial at `n = 10⁵`, average
//! degree 8, `p = 0.3` runs in well under a second in release mode.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use randcast_graph::{CsrGraph, NodeId};

use crate::kernel::{FaultSampler, InformedSet};

/// Which edges carry the fast flood (mirrors
/// `randcast_core::flood::FloodVariant` without the crate dependency).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FastFloodVariant {
    /// Transmit only to BFS-spanning-tree children (the paper's
    /// analyzed algorithm; children are computed on the source's
    /// component only, so disconnected graphs are fine).
    Tree,
    /// Transmit to all neighbors (dominates tree flooding).
    Graph,
}

/// A compiled fast-path flooding plan: flat CSR target lists plus a
/// horizon. The target arrays come straight from the
/// [`CsrGraph`] / [`CsrTree`](randcast_graph::CsrTree) substrate.
#[derive(Clone, Debug)]
pub struct FastFlood {
    /// `targets[offsets[v]..offsets[v+1]]` are `v`'s transmission
    /// targets.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    source: u32,
    horizon: usize,
    n: usize,
}

impl FastFlood {
    /// Compiles a plan transmitting along the given variant's edges for
    /// `horizon` rounds. A `horizon` of 0 is allowed (the run reports
    /// only the source informed); a graph disconnected from `source` is
    /// allowed (the flood covers the source's component). Takes the
    /// graph by value: the [`FastFloodVariant::Graph`] plan *is* the
    /// CSR arrays, moved in without a copy (clone at the call site to
    /// keep the graph).
    #[must_use]
    pub fn new(csr: CsrGraph, source: NodeId, horizon: usize, variant: FastFloodVariant) -> Self {
        let n = csr.node_count();
        let (offsets, targets) = match variant {
            FastFloodVariant::Graph => csr.into_raw_parts(),
            FastFloodVariant::Tree => csr.bfs_tree(u32::from(source)).into_children_csr(),
        };
        FastFlood {
            offsets,
            targets,
            source: u32::from(source),
            horizon,
            n,
        }
    }

    /// The horizon (maximum number of rounds executed).
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    fn targets_of(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    fn has_uninformed_target(&self, v: usize, informed: &InformedSet) -> bool {
        self.targets_of(v).iter().any(|&t| !informed.contains(t))
    }

    /// Executes one seeded flood with per-(node, round) transmitter
    /// failure probability `p`, running until the horizon or until no
    /// further round can change anything.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn run(&self, p: f64, seed: u64) -> FastFloodOutcome {
        let sampler = FaultSampler::new(p);
        let n = self.n;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut informed = InformedSet::new(n);
        informed.insert(self.source);
        let mut informed_by_round = Vec::with_capacity(self.horizon.min(1024) + 1);
        informed_by_round.push(1);
        let mut completion_round = (n == 1).then_some(0);

        let mut frontier: Vec<u32> = Vec::new();
        if self.has_uninformed_target(self.source as usize, &informed) {
            frontier.push(self.source);
        }
        let mut next_frontier: Vec<u32> = Vec::new();
        let mut successes: Vec<u32> = Vec::new();

        for round in 1..=self.horizon {
            if frontier.is_empty() {
                break; // nothing can ever change again
            }
            successes.clear();
            next_frontier.clear();
            // Failed transmitters stay in the frontier for next round.
            sampler.partition_into(&mut rng, &frontier, &mut successes, &mut next_frontier);

            for &u in &successes {
                for &t in self.targets_of(u as usize) {
                    if informed.insert(t) {
                        // The newly informed node starts transmitting
                        // next round if it can inform anyone.
                        next_frontier.push(t);
                    }
                }
            }

            informed_by_round.push(informed.count());
            if completion_round.is_none() && informed.count() == n {
                completion_round = Some(round);
            }

            // Keep only transmitters that can still inform someone; a
            // successful node informed all of its targets this round,
            // and a lingering failed node is dropped as soon as others
            // have covered its targets.
            frontier.clear();
            frontier.extend(
                next_frontier
                    .iter()
                    .copied()
                    .filter(|&u| self.has_uninformed_target(u as usize, &informed)),
            );
        }

        FastFloodOutcome {
            n,
            horizon: self.horizon,
            completion_round,
            informed_by_round,
            informed,
        }
    }
}

/// Outcome of one fast-path flood: the informed set, its growth curve,
/// and derived completion metrics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FastFloodOutcome {
    n: usize,
    horizon: usize,
    informed: InformedSet,
    completion_round: Option<usize>,
    /// `informed_by_round[r]` = nodes informed by the end of round `r`
    /// (`[0] == 1`, the source). The run stops early once nothing can
    /// change, so the vector may be shorter than `horizon + 1`; counts
    /// are constant from its last entry onward.
    informed_by_round: Vec<usize>,
}

impl FastFloodOutcome {
    /// Number of nodes in the graph.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The horizon the plan was allowed to run.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Whether every node (not just the source's component) was
    /// informed within the horizon.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.completion_round.is_some()
    }

    /// The round by which the last node was informed, `None` if the
    /// broadcast never completed (too few rounds, or the graph is
    /// disconnected from the source).
    #[must_use]
    pub fn completion_round(&self) -> Option<usize> {
        self.completion_round
    }

    /// Number of informed nodes at the end of the run.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.count()
    }

    /// Informed fraction `informed / n` at the end of the run.
    #[must_use]
    pub fn informed_fraction(&self) -> f64 {
        self.informed.count() as f64 / self.n as f64
    }

    /// Whether node `v` ended the run informed.
    #[must_use]
    pub fn is_informed(&self, v: NodeId) -> bool {
        self.informed.contains(u32::from(v))
    }

    /// The per-round cumulative informed counts (see the field docs).
    #[must_use]
    pub fn informed_by_round(&self) -> &[usize] {
        &self.informed_by_round
    }

    /// The first round by which at least `count` nodes were informed.
    #[must_use]
    pub fn round_reaching(&self, count: usize) -> Option<usize> {
        self.informed_by_round.iter().position(|&c| c >= count)
    }

    /// The first round by which an *almost-complete* set — at least
    /// `⌈(1 − 1/n)·n⌉ = n − 1` nodes — was informed; the metric of the
    /// rapid almost-complete broadcasting regime.
    #[must_use]
    pub fn almost_complete_round(&self) -> Option<usize> {
        self.round_reaching(self.n.saturating_sub(1).max(1))
    }

    /// The first round by which at least `frac · n` nodes (rounded up)
    /// were informed.
    ///
    /// # Panics
    ///
    /// Panics if `frac ∉ [0, 1]`.
    #[must_use]
    pub fn time_to_fraction(&self, frac: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&frac), "fraction out of range");
        let target = (frac * self.n as f64).ceil() as usize;
        self.round_reaching(target.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_graph::{generators, traversal, Graph, GraphBuilder};

    fn plan(g: &Graph, horizon: usize, variant: FastFloodVariant) -> FastFlood {
        FastFlood::new(CsrGraph::from(g), g.node(0), horizon, variant)
    }

    #[test]
    fn fault_free_tree_flood_takes_exactly_the_radius() {
        let g = generators::path(7);
        let ff = plan(&g, 32, FastFloodVariant::Tree);
        let out = ff.run(0.0, 1);
        assert!(out.complete());
        assert_eq!(out.completion_round(), Some(7));
        assert_eq!(out.informed_by_round(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn fault_free_graph_flood_matches_bfs_layers() {
        let g = generators::grid(5, 7);
        let d = traversal::radius_from(&g, g.node(0));
        let ff = plan(&g, 100, FastFloodVariant::Graph);
        let out = ff.run(0.0, 3);
        assert_eq!(out.completion_round(), Some(d));
        // Each round informs exactly the next BFS layer.
        let layers = traversal::bfs_layers(&g, g.node(0));
        let mut cumulative = 0;
        for (r, layer) in layers.iter().enumerate() {
            cumulative += layer.len();
            assert_eq!(out.informed_by_round()[r], cumulative, "round {r}");
        }
    }

    #[test]
    fn informed_counts_are_monotone_and_bounded() {
        let g = generators::gnp_connected(300, 0.02, &mut rand::rngs::SmallRng::seed_from_u64(5));
        for p in [0.1, 0.5, 0.9] {
            let ff = plan(&g, 400, FastFloodVariant::Graph);
            let out = ff.run(p, 11);
            let counts = out.informed_by_round();
            assert!(counts.windows(2).all(|w| w[0] <= w[1]), "p={p}");
            assert!(*counts.last().unwrap() <= out.n());
            assert_eq!(*counts.last().unwrap(), out.informed_count());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::grid(9, 9);
        let ff = plan(&g, 200, FastFloodVariant::Tree);
        assert_eq!(ff.run(0.4, 7), ff.run(0.4, 7));
        assert_ne!(
            ff.run(0.4, 7).informed_by_round(),
            ff.run(0.4, 8).informed_by_round(),
            "different seeds should (generically) differ"
        );
    }

    #[test]
    fn csr_and_graph_construction_agree() {
        // The CSR-direct generator path must compile to the same plan
        // (and hence bit-identical runs) as Graph conversion.
        let csr =
            generators::gnp_connected_csr(200, 0.03, &mut rand::rngs::SmallRng::seed_from_u64(9));
        let g = Graph::from(&csr);
        for variant in [FastFloodVariant::Tree, FastFloodVariant::Graph] {
            let a = FastFlood::new(csr.clone(), g.node(0), 300, variant);
            let b = plan(&g, 300, variant);
            for seed in 0..5 {
                assert_eq!(a.run(0.4, seed), b.run(0.4, seed), "{variant:?}");
            }
        }
    }

    #[test]
    fn sparse_and_dense_samplers_agree_statistically() {
        // p just below and above the 0.75 sampler switch must produce
        // comparable completion-time distributions; calibrate both
        // against the same graph and compare means loosely.
        let g = generators::path(12);
        let trials = 400u64;
        let mean = |p: f64| {
            let ff = plan(&g, 2000, FastFloodVariant::Tree);
            let total: usize = (0..trials)
                .map(|s| ff.run(p, s).completion_round().expect("horizon ample"))
                .sum();
            total as f64 / trials as f64
        };
        // Expected completion ~ sum of 12 geometric(1-p) waits; the two
        // sampling paths sit on either side of the switch.
        let (m_dense, m_sparse) = (mean(0.74), mean(0.76));
        let expected_dense = 12.0 / (1.0 - 0.74);
        let expected_sparse = 12.0 / (1.0 - 0.76);
        assert!(
            (m_dense - expected_dense).abs() < 0.12 * expected_dense,
            "dense mean {m_dense} vs {expected_dense}"
        );
        assert!(
            (m_sparse - expected_sparse).abs() < 0.12 * expected_sparse,
            "sparse mean {m_sparse} vs {expected_sparse}"
        );
    }

    #[test]
    fn disconnected_graph_reports_partial_fraction() {
        // Two components: a triangle with the source and an isolated
        // edge.
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1).edge(1, 2).edge(0, 2).edge(3, 4);
        let g = b.finish().unwrap();
        for variant in [FastFloodVariant::Tree, FastFloodVariant::Graph] {
            let ff = plan(&g, 50, variant);
            let out = ff.run(0.0, 1);
            assert!(!out.complete(), "{variant:?}");
            assert_eq!(out.informed_count(), 3);
            assert!((out.informed_fraction() - 0.6).abs() < 1e-12);
            assert!(out.is_informed(g.node(2)));
            assert!(!out.is_informed(g.node(3)));
            // Almost-complete (n−1 = 4) is never reached either.
            assert_eq!(out.almost_complete_round(), None);
            // But 60% is reached at round 1.
            assert_eq!(out.time_to_fraction(0.6), Some(1));
        }
    }

    #[test]
    fn short_horizon_leaves_fraction_partial() {
        let g = generators::path(20);
        let ff = plan(&g, 5, FastFloodVariant::Tree);
        let out = ff.run(0.0, 0);
        assert!(!out.complete());
        assert_eq!(out.informed_count(), 6);
        assert_eq!(out.round_reaching(6), Some(5));
        assert_eq!(out.round_reaching(7), None);
    }

    #[test]
    fn single_node_graph_is_complete_at_round_zero() {
        let g = generators::path(0);
        let ff = plan(&g, 4, FastFloodVariant::Graph);
        let out = ff.run(0.3, 9);
        assert!(out.complete());
        assert_eq!(out.completion_round(), Some(0));
        assert_eq!(out.almost_complete_round(), Some(0));
    }

    #[test]
    fn high_p_completes_eventually() {
        let g = generators::star(8);
        let ff = FastFlood::new(CsrGraph::from(&g), g.node(1), 4000, FastFloodVariant::Graph);
        let mut completed = 0;
        for seed in 0..20 {
            completed += usize::from(ff.run(0.95, seed).complete());
        }
        assert_eq!(completed, 20);
    }

    #[test]
    fn tree_variant_from_non_source_root() {
        // Source at a leaf: the BFS tree re-roots there.
        let g = generators::star(5);
        let ff = FastFlood::new(CsrGraph::from(&g), g.node(3), 50, FastFloodVariant::Tree);
        let out = ff.run(0.0, 0);
        assert_eq!(out.completion_round(), Some(2));
    }
}
