//! The shared large-`n` simulation kernel: the informed bitmask,
//! aggregate fault samplers, and collision-counting scratch that the
//! fast-path engines ([`crate::flood_fast`], [`crate::radio_fast`],
//! [`crate::simple_fast`]) are built from.
//!
//! Before this module each fast engine owned a private copy of the same
//! machinery (bitmask words, the `p > 0.75` geometric-skip switch, the
//! touched-list counter). Centralizing it means one implementation to
//! audit for the sampling invariants below — and one place where the
//! RNG draw order is defined, which the per-seed reproducibility
//! guarantees of the engines depend on.
//!
//! # Sampling invariants
//!
//! [`FaultSampler`] draws **exactly one** `f64`/`bool` per input element
//! in the dense regime and one `f64` per *success* (plus one trailing
//! miss) in the sparse regime, in input order. The dense/sparse switch
//! is a pure function of `p` (`p > 0.75`), so two runs with the same
//! seed and `p` observe identical RNG streams regardless of which
//! engine drives the sampler.
//!
//! # The batched (bit-sliced) trial mode
//!
//! The batch primitives ([`BatchTape`], [`BatchBernoulli`],
//! [`BatchedInformedSet`], [`LaneCounter`]) run [`LANES`] = 64
//! Monte-Carlo trials per machine word: lane `k` of every `u64` is
//! trial `k` of the block. All batch randomness is *site-addressed*: a
//! coin is a pure function of `(block seed, stream, site, lane)` rather
//! than a position in a sequential stream, so the order in which an
//! engine happens to evaluate coins cannot change any lane's outcome.
//! That purity is what makes per-lane EXACT equivalence between a
//! batched run and a scalar lane replay testable — both read the very
//! same words (`crates/core/tests/batch_equivalence.rs` pins it).

use rand::rngs::SmallRng;
use rand::Rng;

use randcast_stats::seed::{splitmix64, SeedSequence};

/// A word-level node bitmask with a running popcount — the informed
/// (or correct) set of a broadcast kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InformedSet {
    words: Vec<u64>,
    count: usize,
}

impl InformedSet {
    /// An empty set over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        InformedSet {
            words: vec![0u64; n.div_ceil(64)],
            count: 0,
        }
    }

    /// Inserts node `v`; returns whether it was newly inserted.
    pub fn insert(&mut self, v: u32) -> bool {
        let (w, b) = (v as usize / 64, 1u64 << (v % 64));
        if self.words[w] & b == 0 {
            self.words[w] |= b;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Whether node `v` is in the set.
    #[must_use]
    pub fn contains(&self, v: u32) -> bool {
        self.words[v as usize / 64] & (1u64 << (v % 64)) != 0
    }

    /// Number of nodes in the set.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of set nodes inside the node range `start..end` — the
    /// per-shard informed count of a sharded pass (one popcount per
    /// word, edge words masked).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end` exceeds the set's node range.
    #[must_use]
    pub fn count_range(&self, start: u32, end: u32) -> usize {
        assert!(start <= end, "inverted range");
        let (start, end) = (start as usize, end as usize);
        if start == end {
            return 0;
        }
        let (w0, w1) = (start / 64, (end - 1) / 64);
        let lo_mask = !0u64 << (start % 64);
        let hi_mask = !0u64 >> (63 - (end - 1) % 64);
        if w0 == w1 {
            return (self.words[w0] & lo_mask & hi_mask).count_ones() as usize;
        }
        let mut total = (self.words[w0] & lo_mask).count_ones() as usize;
        for &w in &self.words[w0 + 1..w1] {
            total += w.count_ones() as usize;
        }
        total + (self.words[w1] & hi_mask).count_ones() as usize
    }
}

/// Per-shard frontier (or participant) lists: the node queue of a
/// sharded pass, kept as one list per shard so a round can be replayed
/// shard-at-a-time against one resident [`ShardView`] at a time
/// (`randcast_graph::shard::ShardView`). Routing is the caller's
/// (`ShardPlan::shard_of`); this type only owns the lists, so the
/// kernel stays independent of the graph crate.
///
/// Engines typically hold two — the current round's frontier and the
/// next round's staging lists — and swap per-shard contents through
/// [`refill_from`](Self::refill_from) at each round boundary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardFrontier {
    lists: Vec<Vec<u32>>,
}

impl ShardFrontier {
    /// Empty frontier lists for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        ShardFrontier {
            lists: vec![Vec::new(); shards],
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.lists.len()
    }

    /// Appends node `v` to shard `s`'s list.
    pub fn push(&mut self, s: usize, v: u32) {
        self.lists[s].push(v);
    }

    /// Shard `s`'s list, in push order.
    #[must_use]
    pub fn shard(&self, s: usize) -> &[u32] {
        &self.lists[s]
    }

    /// Whether every shard's list is empty — the sharded form of the
    /// monolithic frontier-drained check.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lists.iter().all(Vec::is_empty)
    }

    /// Total nodes across all shards.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Clears every shard's list (capacity retained).
    pub fn clear(&mut self) {
        for l in &mut self.lists {
            l.clear();
        }
    }

    /// Replaces shard `s`'s list with the nodes of `staged`'s shard `s`
    /// that pass `keep`, draining the staged list — the round-boundary
    /// filter of a sharded frontier pass (`keep` is the monolithic
    /// has-uninformed-target predicate, evaluated against one shard
    /// view).
    pub fn refill_from(
        &mut self,
        staged: &mut ShardFrontier,
        s: usize,
        mut keep: impl FnMut(u32) -> bool,
    ) {
        self.lists[s].clear();
        self.lists[s].extend(staged.lists[s].drain(..).filter(|&v| keep(v)));
    }
}

/// Runs one read-only pass per shard, fanning contiguous shard ranges
/// across at most `threads` scoped workers, and returns the per-shard
/// results **in ascending shard order** regardless of which worker ran
/// which shard or in what wall-clock order they finished.
///
/// This is the engine-side primitive behind the thread-parallel batched
/// round: `pass` must only *read* shared round state (the frozen
/// frontier, informed masks, activity words) and return the writes it
/// would have performed as data — delivery events, retained node lists,
/// per-node mask updates. The caller then applies the returned shard
/// results sequentially in ascending shard order, which replays the
/// exact write sequence of the single-threaded sharded pass, so
/// outcomes are byte-identical for every thread count (see DESIGN.md,
/// "Parallel shard passes").
///
/// With `threads <= 1` (or a single shard) no threads are spawned and
/// `pass` runs inline, shard by shard.
pub fn shard_passes<R, F>(shards: usize, threads: usize, pass: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.clamp(1, shards.max(1));
    if workers <= 1 {
        return (0..shards).map(pass).collect();
    }
    let mut per_worker: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * shards / workers;
                let hi = (w + 1) * shards / workers;
                let pass = &pass;
                scope.spawn(move || (lo..hi).map(pass).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("shard worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(shards);
    for chunk in per_worker {
        out.extend(chunk);
    }
    out
}

/// [`shard_passes`] for passes that need *owned mutable* per-shard
/// state: each element of `state` is moved into its shard's pass, and
/// the results come back in ascending shard order. This is the merge
/// side of a deferred-write round — per-listener-shard event buckets
/// or split mask ranges fan out to workers, each worker folds its
/// shard's events in the ascending-transmit-shard order the sequential
/// merge uses, and the caller applies the returned results
/// sequentially, exactly as with [`shard_passes`].
///
/// With `threads <= 1` (or a single shard) no threads are spawned.
pub fn range_passes<S, R, F>(state: Vec<S>, threads: usize, pass: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, S) -> R + Sync,
{
    let shards = state.len();
    let workers = threads.clamp(1, shards.max(1));
    if workers <= 1 {
        return state
            .into_iter()
            .enumerate()
            .map(|(s, st)| pass(s, st))
            .collect();
    }
    let mut per_worker: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut state = state.into_iter();
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * shards / workers;
                let hi = (w + 1) * shards / workers;
                let chunk: Vec<S> = state.by_ref().take(hi - lo).collect();
                let pass = &pass;
                scope.spawn(move || {
                    chunk
                        .into_iter()
                        .enumerate()
                        .map(|(i, st)| pass(lo + i, st))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("range worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(shards);
    for chunk in per_worker {
        out.extend(chunk);
    }
    out
}

/// Aggregate per-round Bernoulli fault sampling over a participant
/// list: each element independently *succeeds* (transmitter works) with
/// probability `1 − p`.
///
/// Dense regime (`p ≤ 0.75`): one coin per element. Sparse regime
/// (`p > 0.75`): successes are rare, so the sampler jumps directly
/// between them with geometric skips and the cost is proportional to
/// the number of successes, not the participant count.
#[derive(Clone, Copy, Debug)]
pub struct FaultSampler {
    p: f64,
    /// `ln p`, precomputed for the sparse regime (0 when unused).
    ln_p: f64,
    sparse: bool,
}

impl FaultSampler {
    /// A sampler for per-(node, round) failure probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        FaultSampler {
            p,
            ln_p: if p > 0.0 { p.ln() } else { 0.0 },
            sparse: p > 0.75,
        }
    }

    /// The failure probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Samples one round over `input`, appending successful elements to
    /// `successes` and failed ones to `failures` (relative order
    /// preserved in both). Neither vector is cleared.
    pub fn partition_into(
        &self,
        rng: &mut SmallRng,
        input: &[u32],
        successes: &mut Vec<u32>,
        failures: &mut Vec<u32>,
    ) {
        if self.p == 0.0 {
            successes.extend_from_slice(input);
        } else if self.sparse {
            // Jump between successful elements: the number of failures
            // before the next success is Geometric(1 − p). Everything
            // skipped over failed.
            let mut prev = 0usize;
            let mut idx = geometric_skip(rng, self.ln_p);
            while idx < input.len() {
                failures.extend_from_slice(&input[prev..idx]);
                successes.push(input[idx]);
                prev = idx + 1;
                idx = prev.saturating_add(geometric_skip(rng, self.ln_p));
            }
            failures.extend_from_slice(&input[prev..]);
        } else {
            for &u in input {
                if rng.gen_bool(self.p) {
                    failures.push(u);
                } else {
                    successes.push(u);
                }
            }
        }
    }

    /// Samples one round over `input`, appending only the successful
    /// elements to `successes` (failures are discarded). Draws the same
    /// RNG stream as [`partition_into`](Self::partition_into).
    pub fn successes_into(&self, rng: &mut SmallRng, input: &[u32], successes: &mut Vec<u32>) {
        if self.p == 0.0 {
            successes.extend_from_slice(input);
        } else if self.sparse {
            let mut idx = geometric_skip(rng, self.ln_p);
            while idx < input.len() {
                successes.push(input[idx]);
                idx = (idx + 1).saturating_add(geometric_skip(rng, self.ln_p));
            }
        } else {
            successes.extend(input.iter().copied().filter(|_| !rng.gen_bool(self.p)));
        }
    }

    /// The number of failures before the first success when each trial
    /// independently fails with probability `p` — the index of the
    /// first working transmission in a phase, `usize::MAX`-saturated.
    /// One uniform drives the draw, so for a fixed RNG stream the
    /// result is monotone nondecreasing in `p` (the coupling the
    /// monotonicity property tests rely on).
    pub fn first_success(&self, rng: &mut SmallRng) -> usize {
        if self.p == 0.0 {
            0
        } else {
            geometric_skip(rng, self.ln_p)
        }
    }
}

/// Number of failures before the next success when each trial fails
/// with probability `p = exp(ln_p)`: `⌊ln(U) / ln(p)⌋` for uniform
/// `U ∈ (0, 1]`.
fn geometric_skip(rng: &mut SmallRng, ln_p: f64) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    // 1 − u ∈ (0, 1]: avoids ln(0).
    let skip = (1.0 - u).ln() / ln_p;
    if skip >= usize::MAX as f64 {
        usize::MAX
    } else {
        skip as usize
    }
}

/// Saturating per-listener transmitter counts with a touched list, so a
/// radio round's collision resolution costs only its frontier
/// neighborhoods (2 already means "collision").
#[derive(Clone, Debug)]
pub struct CollisionCounter {
    counts: Vec<u8>,
    touched: Vec<u32>,
}

impl CollisionCounter {
    /// A zeroed counter over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        CollisionCounter {
            counts: vec![0u8; n],
            touched: Vec::new(),
        }
    }

    /// Records one transmission reaching listener `v`.
    pub fn add(&mut self, v: u32) {
        let vi = v as usize;
        if self.counts[vi] == 0 {
            self.touched.push(v);
        }
        self.counts[vi] = self.counts[vi].saturating_add(1);
    }

    /// Visits every listener that heard **exactly one** transmitter (in
    /// touch order), then resets the counter for the next round.
    pub fn drain_sole_receivers(&mut self, mut hear: impl FnMut(u32)) {
        for i in 0..self.touched.len() {
            let v = self.touched[i];
            if self.counts[v as usize] == 1 {
                hear(v);
            }
            self.counts[v as usize] = 0;
        }
        self.touched.clear();
    }
}

/// A [`CollisionCounter`] partitioned by listener shard, so the
/// per-round sole-receiver extraction fans out across
/// [`shard_passes`] workers while replaying the sequential drain
/// exactly.
///
/// Ordering argument: each listener belongs to exactly one shard, so
/// the monolithic counter's global first-touch sequence *restricted to
/// shard ℓ* is precisely shard ℓ's local touched list — provided adds
/// arrive in the same global order, which they do because the caller
/// folds transmit results in ascending transmit-shard order. Draining
/// shard lists in ascending ℓ therefore visits, for every ℓ, the same
/// listeners in the same order as the monolithic drain; and the only
/// state radio rounds mutate under the drain callback partitions by
/// listener shard (the informed bitset is order-free, the participant
/// list of shard ℓ receives exactly ℓ's restriction). See DESIGN.md,
/// "Parallel collision drain".
#[derive(Clone, Debug)]
pub struct ShardedCollisions {
    bounds: Vec<u32>,
    counts: Vec<u8>,
    touched: Vec<Vec<u32>>,
}

impl ShardedCollisions {
    /// A zeroed counter over the shard bounds of a plan
    /// (`bounds[s]..bounds[s + 1]` is shard `s`; last bound is `n`).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` has fewer than two entries.
    #[must_use]
    pub fn new(bounds: &[u32]) -> Self {
        assert!(bounds.len() >= 2, "bounds must cover at least one shard");
        let n = bounds[bounds.len() - 1] as usize;
        let k = bounds.len() - 1;
        ShardedCollisions {
            bounds: bounds.to_vec(),
            counts: vec![0u8; n],
            touched: (0..k).map(|_| Vec::new()).collect(),
        }
    }

    /// Records one transmission reaching listener `v`. The shard lookup
    /// runs only on first touch.
    pub fn add(&mut self, v: u32) {
        let vi = v as usize;
        if self.counts[vi] == 0 {
            let s = self.bounds.partition_point(|&b| b <= v) - 1;
            self.touched[s].push(v);
        }
        self.counts[vi] = self.counts[vi].saturating_add(1);
    }

    /// Visits every listener that heard **exactly one** transmitter —
    /// ascending listener shard, first-touch order within a shard, the
    /// order the monolithic [`CollisionCounter`] produces restricted
    /// per shard — then resets the counter for the next round.
    ///
    /// With `threads > 1` the per-shard sole-receiver lists are
    /// extracted concurrently (a read-only scan of the counts); `hear`
    /// and the reset still run sequentially, so the callback sees a
    /// thread-count-independent sequence.
    pub fn drain_sole_receivers(&mut self, threads: usize, mut hear: impl FnMut(usize, u32)) {
        let k = self.touched.len();
        if threads <= 1 || k <= 1 {
            for s in 0..k {
                for i in 0..self.touched[s].len() {
                    let v = self.touched[s][i];
                    if self.counts[v as usize] == 1 {
                        hear(s, v);
                    }
                    self.counts[v as usize] = 0;
                }
                self.touched[s].clear();
            }
            return;
        }
        let counts = &self.counts;
        let touched = &self.touched;
        let sole = shard_passes(k, threads, |s| {
            touched[s]
                .iter()
                .copied()
                .filter(|&v| counts[v as usize] == 1)
                .collect::<Vec<u32>>()
        });
        for (s, list) in sole.into_iter().enumerate() {
            for v in list {
                hear(s, v);
            }
        }
        for list in &mut self.touched {
            for &v in list.iter() {
                self.counts[v as usize] = 0;
            }
            list.clear();
        }
    }

    /// Total touched listeners this round (pre-drain).
    #[must_use]
    pub fn touched_len(&self) -> usize {
        self.touched.iter().map(Vec::len).sum()
    }
}

/// Number of Monte-Carlo trial lanes in one batched block: one per bit
/// of a `u64`.
pub const LANES: usize = 64;

/// A set of trial lanes, bit `k` = lane `k` of the block.
pub type LaneMask = u64;

/// The lane mask selecting lanes `0..count` (all 64 when `count ≥ 64`).
#[must_use]
pub fn lane_mask_first(count: usize) -> LaneMask {
    if count >= LANES {
        !0
    } else {
        (1u64 << count) - 1
    }
}

/// Seed-tree stream label for per-(site) fault coins of a batched
/// block.
pub const FAULT_STREAM: u64 = 0xFA01;

/// Seed-tree stream label for per-(site) Decay participation coins of a
/// batched block.
pub const DECAY_STREAM: u64 = 0xDEC0;

/// Odd multiplier decorrelating sites before the SplitMix64 finisher.
const SITE_MUL: u64 = 0xD6E8_FEB8_6659_FD93;
/// Odd multiplier decorrelating bit planes of one site.
const PLANE_MUL: u64 = 0xCA5A_8268_83CA_B8F9;

/// `plane · PLANE_MUL` for every plane of a 53-bit draw, precomputed so
/// the hot mask loop spends its multiplier ports on the SplitMix
/// finisher alone.
const PLANE_MIX: [u64; 53] = {
    let mut t = [0u64; 53];
    let mut i = 0;
    while i < 53 {
        t[i] = (i as u64).wrapping_mul(PLANE_MUL);
        i += 1;
    }
    t
};

/// A pure random-word tape for one batched 64-trial block: every word
/// is a function of `(block seed, stream, site, plane)` and nothing
/// else.
///
/// The base is derived through the existing seed tree
/// ([`SeedSequence::child`]), so batched blocks hang off the same
/// derivation structure as scalar trial seeds. Lane `k`'s conceptual
/// "derived seed" is the pair `(block_seed, k)`: the lane reads bit `k`
/// of exactly the words a batched run over the whole block reads.
#[derive(Clone, Copy, Debug)]
pub struct BatchTape {
    base: u64,
}

impl BatchTape {
    /// The tape for `stream` (e.g. [`FAULT_STREAM`]) of a block.
    #[must_use]
    pub fn new(block_seed: u64, stream: u64) -> Self {
        BatchTape {
            base: SeedSequence::new(block_seed).child(stream).master(),
        }
    }

    /// The `plane`-th random word of `site`: bit `k` is one unbiased
    /// random bit of lane `k`.
    #[must_use]
    pub fn word(&self, site: u64, plane: u32) -> u64 {
        splitmix64(
            self.base ^ site.wrapping_mul(SITE_MUL) ^ u64::from(plane).wrapping_mul(PLANE_MUL),
        )
    }

    /// All 64 lanes' fair coins at `site` (probability 1/2 each), as
    /// one word: bit `k` is lane `k`'s coin.
    #[must_use]
    pub fn fair_mask(&self, site: u64) -> LaneMask {
        self.word(site, 0)
    }

    /// Lane `k`'s fair coin at `site` — bit `k` of
    /// [`fair_mask`](Self::fair_mask), exactly.
    #[must_use]
    pub fn fair_lane(&self, site: u64, lane: u32) -> bool {
        self.fair_mask(site) >> lane & 1 == 1
    }

    /// Lane `k`'s 53-bit uniform at `site`, assembled MSB-first from the
    /// same plane words the bit-sliced threshold compare reads:
    /// `uniform53 / 2^53` is the lane's unit uniform.
    #[must_use]
    pub fn uniform53(&self, site: u64, lane: u32) -> u64 {
        let mut m = 0u64;
        for plane in 0..53 {
            m = m << 1 | (self.word(site, plane) >> lane & 1);
        }
        m
    }
}

/// A bit-sliced Bernoulli(`p`) sampler over a [`BatchTape`]: one call
/// draws 64 independent coins (one per lane) from one site.
///
/// Exactness: the vendored `rand` evaluates `gen_bool(p)` as
/// `(bits >> 11) as f64 / 2^53 < p`, i.e. a 53-bit uniform integer `M`
/// compared against `p`. That comparison is equivalent to the *integer*
/// comparison `M < ⌈p · 2^53⌉` (scaling by a power of two is exact in
/// `f64`), so the threshold compare here hits the same acceptance set —
/// per-lane probabilities match the scalar sampler bit-for-bit in
/// distribution. The compare runs lexicographically over the plane
/// words, MSB first, and stops as soon as every undecided lane is
/// resolved (~`log2(lanes) + 2` words in expectation), which is where
/// the batch speedup comes from.
#[derive(Clone, Copy, Debug)]
pub struct BatchBernoulli {
    /// `⌈p · 2^53⌉`; the coin is `M < tint`. `tint = 2^53` means the
    /// coin is always true.
    tint: u64,
}

impl BatchBernoulli {
    /// A sampler with per-lane success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        BatchBernoulli {
            tint: (p * (1u64 << 53) as f64).ceil() as u64,
        }
    }

    /// Draws all lanes of `active` at `site`: the returned mask has bit
    /// `k` set iff lane `k` is in `active` and its coin came up true.
    /// Lanes outside `active` are reported false (their underlying coin
    /// value is unaffected — restricting `active` never changes an
    /// included lane's bit).
    #[must_use]
    #[inline]
    pub fn mask(&self, tape: &BatchTape, site: u64, active: LaneMask) -> LaneMask {
        if self.tint >= 1 << 53 {
            return active;
        }
        if self.tint == 0 {
            return 0;
        }
        // Hoist the site mix out of the plane loop; each word is then
        // one multiply plus the SplitMix64 finisher.
        let site_base = tape.base ^ site.wrapping_mul(SITE_MUL);
        let mut hit = 0u64;
        let mut undecided = active;
        let mut plane = 0usize;
        // Four planes per check: the SplitMix finishers are independent
        // (pipelined multiplies) and the exit branch runs once per
        // quad instead of once per word. The per-plane update is
        // identical to a word-at-a-time scan, so lane semantics are
        // unchanged. 53 = 4 · 13 + 1; the last plane is handled below.
        while undecided != 0 && plane < 52 {
            let w0 = splitmix64(site_base ^ PLANE_MIX[plane]);
            let w1 = splitmix64(site_base ^ PLANE_MIX[plane + 1]);
            let w2 = splitmix64(site_base ^ PLANE_MIX[plane + 2]);
            let w3 = splitmix64(site_base ^ PLANE_MIX[plane + 3]);
            // Branch-free select on the threshold bit: a 1-bit accepts
            // lanes with a 0 word bit, a 0-bit rejects lanes with a 1.
            let tb0 = 0u64.wrapping_sub(self.tint >> (52 - plane) & 1);
            let tb1 = 0u64.wrapping_sub(self.tint >> (51 - plane) & 1);
            let tb2 = 0u64.wrapping_sub(self.tint >> (50 - plane) & 1);
            let tb3 = 0u64.wrapping_sub(self.tint >> (49 - plane) & 1);
            hit |= undecided & !w0 & tb0;
            undecided &= w0 ^ !tb0;
            hit |= undecided & !w1 & tb1;
            undecided &= w1 ^ !tb1;
            hit |= undecided & !w2 & tb2;
            undecided &= w2 ^ !tb2;
            hit |= undecided & !w3 & tb3;
            undecided &= w3 ^ !tb3;
            plane += 4;
        }
        if undecided != 0 {
            let w = splitmix64(site_base ^ 52u64.wrapping_mul(PLANE_MUL));
            let tb = 0u64.wrapping_sub(self.tint & 1);
            hit |= undecided & !w & tb;
        }
        // Lanes still undecided have M == tint exactly: not less.
        hit
    }

    /// Lane `k`'s coin at `site` — bit `k` of [`mask`](Self::mask),
    /// exactly, evaluated by reading single bits of the same plane
    /// words.
    #[must_use]
    pub fn lane(&self, tape: &BatchTape, site: u64, lane: u32) -> bool {
        if self.tint >= 1 << 53 {
            return true;
        }
        for plane in 0..53 {
            let t = self.tint >> (52 - plane) & 1;
            let m = tape.word(site, plane) >> lane & 1;
            if m != t {
                return t == 1;
            }
        }
        false
    }
}

/// Per-lane unsigned counters stored bit-plane-wise: `planes[j]` holds
/// bit `j` of all 64 lane counts. Masked increments are ripple-carry
/// word operations (amortized O(1) per `+1`), and order comparisons
/// against a scalar threshold come out as lane masks without ever
/// materializing the 64 counts.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LaneCounter {
    planes: Vec<u64>,
}

impl LaneCounter {
    /// A counter with every lane at zero.
    #[must_use]
    pub fn new() -> Self {
        LaneCounter { planes: Vec::new() }
    }

    /// A counter holding the given per-lane values (the bit-plane
    /// transpose of `counts`).
    #[must_use]
    pub fn from_counts(counts: &[u32; LANES]) -> Self {
        let max = counts.iter().copied().max().unwrap_or(0);
        let width = if max == 0 {
            0
        } else {
            max.ilog2() as usize + 1
        };
        let mut planes = vec![0u64; width];
        for (lane, &c) in counts.iter().enumerate() {
            let mut bits = u64::from(c);
            while bits != 0 {
                planes[bits.trailing_zeros() as usize] |= 1u64 << lane;
                bits &= bits - 1;
            }
        }
        LaneCounter { planes }
    }

    /// Resets every lane to zero, keeping the allocated planes — the
    /// per-phase vote counters of the malicious kernels reuse one
    /// counter across millions of phases.
    pub fn clear(&mut self) {
        self.planes.clear();
    }

    /// Adds `amount` to every lane selected by `mask`.
    pub fn add_masked(&mut self, mask: LaneMask, amount: u64) {
        if mask == 0 || amount == 0 {
            return;
        }
        let mut carry = 0u64;
        let mut bit = 0usize;
        while carry != 0 || (bit < 64 && amount >> bit != 0) {
            if self.planes.len() == bit {
                self.planes.push(0);
            }
            let a = self.planes[bit];
            let b = if bit < 64 && amount >> bit & 1 == 1 {
                mask
            } else {
                0
            };
            let partial = a ^ b;
            self.planes[bit] = partial ^ carry;
            carry = (a & b) | (partial & carry);
            bit += 1;
        }
    }

    /// Adds another counter's per-lane values to this one — the
    /// bit-sliced addition of two plane sets, used to fold per-worker
    /// count deltas back into the global counter. Lane-wise addition is
    /// commutative and associative, so the fold order cannot change the
    /// resulting counts.
    pub fn add_counter(&mut self, other: &LaneCounter) {
        let width = self.planes.len().max(other.planes.len());
        let mut carry = 0u64;
        let mut bit = 0usize;
        while bit < width || carry != 0 {
            if self.planes.len() == bit {
                self.planes.push(0);
            }
            let a = self.planes[bit];
            let b = other.planes.get(bit).copied().unwrap_or(0);
            let partial = a ^ b;
            self.planes[bit] = partial ^ carry;
            carry = (a & b) | (partial & carry);
            bit += 1;
        }
    }

    /// Lane `k`'s current count.
    #[must_use]
    pub fn get(&self, lane: u32) -> u64 {
        Self::get_in(&self.planes, lane)
    }

    /// Lane `k`'s count in a plane snapshot previously taken from
    /// [`planes`](Self::planes).
    #[must_use]
    pub fn get_in(planes: &[u64], lane: u32) -> u64 {
        planes
            .iter()
            .enumerate()
            .map(|(bit, &w)| (w >> lane & 1) << bit)
            .sum()
    }

    /// The raw bit planes (for cheap per-round snapshots).
    #[must_use]
    pub fn planes(&self) -> &[u64] {
        &self.planes
    }

    /// The mask of lanes whose count is `≥ threshold`, via one
    /// bit-sliced MSB-first comparison.
    #[must_use]
    pub fn ge_mask(&self, threshold: u64) -> LaneMask {
        let bits = self
            .planes
            .len()
            .max(64 - threshold.leading_zeros() as usize);
        let mut gt = 0u64;
        let mut eq = !0u64;
        for bit in (0..bits).rev() {
            let a = self.planes.get(bit).copied().unwrap_or(0);
            if bit < 64 && threshold >> bit & 1 == 1 {
                eq &= a;
            } else {
                gt |= eq & a;
                eq &= !a;
            }
        }
        gt | eq
    }

    /// The mask of lanes whose count is exactly `value`.
    #[must_use]
    pub fn eq_mask(&self, value: u64) -> LaneMask {
        let bits = self.planes.len().max(64 - value.leading_zeros() as usize);
        let mut eq = !0u64;
        for bit in 0..bits {
            let a = self.planes.get(bit).copied().unwrap_or(0);
            eq &= if bit < 64 && value >> bit & 1 == 1 {
                a
            } else {
                !a
            };
        }
        eq
    }
}

/// Records `round` as the crossing round for every lane set in `mask`
/// (a shared helper of the batched engines' completion/almost
/// bookkeeping).
pub(crate) fn record_crossings(mask: LaneMask, round: usize, rounds: &mut [Option<usize>]) {
    let mut m = mask;
    while m != 0 {
        let lane = m.trailing_zeros() as usize;
        rounds[lane] = Some(round);
        m &= m - 1;
    }
}

/// Per-lane popcounts over a slice of lane masks: `out[k]` is the
/// number of masks with bit `k` set. Runs as 64×64 bit-matrix
/// transposes plus one hardware popcount per lane — ~7 word ops per
/// mask, an order of magnitude cheaper than 64 ripple-carry adds.
#[must_use]
pub fn lane_popcounts(masks: &[LaneMask]) -> [u32; LANES] {
    let mut counts = [0u32; LANES];
    let mut block = [0u64; LANES];
    for chunk in masks.chunks(LANES) {
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()..].fill(0);
        transpose64(&mut block);
        for (lane, &col) in block.iter().enumerate() {
            counts[lane] += col.count_ones();
        }
    }
    counts
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight 7-3): after
/// the call, bit `i` of `a[k]` equals bit `k` of the original `a[i]`.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (a[k] >> j ^ a[k + j]) & m;
            a[k + j] ^= t;
            a[k] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// The mask of lanes whose bit-plane value (little-endian: `planes[i]`
/// holds bit `i` of every lane) is `≤ k`, via one MSB-first bit-sliced
/// comparison.
#[must_use]
pub fn planes_le_mask(planes: &[u64], k: u64) -> LaneMask {
    if planes.len() < 64 && k >> planes.len() != 0 {
        // Every representable value fits under k.
        return !0;
    }
    let mut gt = 0u64;
    let mut und = !0u64;
    for (i, &pl) in planes.iter().enumerate().rev() {
        let kb = 0u64.wrapping_sub(if i < 64 { k >> i & 1 } else { 0 });
        gt |= und & pl & !kb;
        und &= !(pl ^ kb);
    }
    !gt
}

/// The mask of lanes whose bit-plane value equals `k` exactly.
#[must_use]
pub fn planes_eq_mask(planes: &[u64], k: u64) -> LaneMask {
    if planes.len() < 64 && k >> planes.len() != 0 {
        // k is not representable in this width.
        return 0;
    }
    let mut eq = !0u64;
    for (i, &pl) in planes.iter().enumerate().rev() {
        let kb = 0u64.wrapping_sub(if i < 64 { k >> i & 1 } else { 0 });
        eq &= !(pl ^ kb);
    }
    eq
}

/// Both [`planes_le_mask`]`(planes, k_lo)` and
/// [`planes_le_mask`]`(planes, k_hi)` in one scan over the planes
/// (`k_lo ≤ k_hi`). Batched engines use this for the paired
/// "eligible before the horizon" / "safe from the horizon for a while"
/// thresholds drawn from the same value.
#[must_use]
pub fn planes_le2_mask(planes: &[u64], k_lo: u64, k_hi: u64) -> (LaneMask, LaneMask) {
    debug_assert!(k_lo <= k_hi);
    if planes.len() < 64 && k_lo >> planes.len() != 0 {
        return (!0, !0);
    }
    if planes.len() < 64 && k_hi >> planes.len() != 0 {
        return (planes_le_mask(planes, k_lo), !0);
    }
    let mut gt_lo = 0u64;
    let mut und_lo = !0u64;
    let mut gt_hi = 0u64;
    let mut und_hi = !0u64;
    for (i, &pl) in planes.iter().enumerate().rev() {
        let (lo_bit, hi_bit) = if i < 64 {
            (k_lo >> i & 1, k_hi >> i & 1)
        } else {
            (0, 0)
        };
        let lb = 0u64.wrapping_sub(lo_bit);
        let hb = 0u64.wrapping_sub(hi_bit);
        gt_lo |= und_lo & pl & !lb;
        und_lo &= !(pl ^ lb);
        gt_hi |= und_hi & pl & !hb;
        und_hi &= !(pl ^ hb);
    }
    (!gt_lo, !gt_hi)
}

/// The mask of lanes where `a`'s bit-plane value exceeds `b`'s. The two
/// slices must have equal width.
#[must_use]
pub fn planes_gt_mask(a: &[u64], b: &[u64]) -> LaneMask {
    debug_assert_eq!(a.len(), b.len());
    let mut gt = 0u64;
    let mut und = !0u64;
    for (&ai, &bi) in a.iter().zip(b).rev() {
        gt |= und & ai & !bi;
        und &= !(ai ^ bi);
    }
    gt
}

/// Overwrites `dst`'s value with `src`'s in every lane of `m` (both in
/// little-endian bit-plane form, equal widths).
pub fn planes_assign(dst: &mut [u64], src: &[u64], m: LaneMask) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (*d & !m) | (s & m);
    }
}

/// Sets `dst`'s value to `base + c` in every lane of `m` (bit-plane
/// form, equal widths); other lanes of `dst` are untouched. The sum
/// must fit the plane width for every selected lane.
pub fn planes_add_const(dst: &mut [u64], base: &[u64], c: u64, m: LaneMask) {
    debug_assert_eq!(dst.len(), base.len());
    let mut carry = 0u64;
    for (i, (d, &a)) in dst.iter_mut().zip(base).enumerate() {
        let cb = 0u64.wrapping_sub(if i < 64 { c >> i & 1 } else { 0 });
        let sum = a ^ cb ^ carry;
        *d = (*d & !m) | (sum & m);
        carry = (a & cb) | (a & carry) | (cb & carry);
    }
    debug_assert_eq!(carry & m, 0, "bit-plane addition overflowed");
}

/// Sets `dst`'s value to `base + addend + 1` in every lane of `m` and
/// to `default`'s value in every other lane (bit-plane form; `addend`
/// may be narrower than `base` and is zero-extended). The sum must fit
/// the plane width for every selected lane.
///
/// This is the batched engines' schedule finisher: a node's per-lane
/// success rounds are `s + 1 + attempt`, with the attempt indices
/// accumulated plane-wise across loop iterations (success sets are
/// disjoint, so accumulation is a plain OR) and added here in one
/// ripple pass instead of one masked add per iteration; failed lanes
/// take the `never` sentinel in the same pass.
pub fn planes_add_one_masked(
    dst: &mut [u64],
    base: &[u64],
    addend: &[u64],
    m: LaneMask,
    default: &[u64],
) {
    debug_assert_eq!(dst.len(), base.len());
    debug_assert_eq!(dst.len(), default.len());
    debug_assert!(addend.len() <= base.len());
    let mut carry = m; // the `+ 1`
    if m == !0 {
        // Every lane selected (the common case in a batched engine's
        // hot loop): no default select, and once the carry dies past
        // the addend the remaining planes are a straight copy.
        for (i, d) in dst.iter_mut().enumerate() {
            let a = base[i];
            if carry == 0 && i >= addend.len() {
                *d = a;
                continue;
            }
            let b = if i < addend.len() { addend[i] } else { 0 };
            *d = a ^ b ^ carry;
            carry = (a & b) | (a & carry) | (b & carry);
        }
    } else {
        for (i, d) in dst.iter_mut().enumerate() {
            let a = base[i];
            let b = if i < addend.len() { addend[i] } else { 0 };
            let sum = a ^ b ^ carry;
            *d = (default[i] & !m) | (sum & m);
            carry = (a & b) | (a & carry) | (b & carry);
        }
    }
    debug_assert_eq!(carry & m, 0, "bit-plane addition overflowed");
}

/// The batched counterpart of [`InformedSet`]: one lane word per node
/// (bit `k` = "node is informed in trial `k`") plus a [`LaneCounter`]
/// of per-lane set sizes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchedInformedSet {
    masks: Vec<u64>,
    counts: LaneCounter,
    n: usize,
}

impl BatchedInformedSet {
    /// An empty set over `n` nodes (all lanes).
    #[must_use]
    pub fn new(n: usize) -> Self {
        BatchedInformedSet {
            masks: vec![0u64; n],
            counts: LaneCounter::new(),
            n,
        }
    }

    /// Assembles a set from externally computed parts (a batched
    /// engine's group-level accounting). `counts` must equal the
    /// per-lane popcounts over `masks`.
    pub(crate) fn from_parts(masks: Vec<u64>, counts: LaneCounter) -> Self {
        let n = masks.len();
        BatchedInformedSet { masks, counts, n }
    }

    /// Splits the set into its raw mask words and size counter for a
    /// parallel merge: workers mutate disjoint `masks` ranges (via
    /// `split_at_mut` along shard bounds) and accumulate their own
    /// [`LaneCounter`] deltas, which the caller folds back with
    /// [`LaneCounter::add_counter`]. The counter is only *observed*
    /// after the fold, so the split never exposes an inconsistent
    /// `(masks, counts)` pair to readers.
    pub(crate) fn parts_mut(&mut self) -> (&mut [u64], &mut LaneCounter) {
        (&mut self.masks, &mut self.counts)
    }

    /// Inserts node `v` into every lane of `lanes`; returns the lanes
    /// where it was newly inserted.
    pub fn insert_masked(&mut self, v: u32, lanes: LaneMask) -> LaneMask {
        let m = &mut self.masks[v as usize];
        let newly = lanes & !*m;
        if newly != 0 {
            *m |= newly;
            self.counts.add_masked(newly, 1);
        }
        newly
    }

    /// The lanes containing node `v`.
    #[must_use]
    pub fn lanes(&self, v: u32) -> LaneMask {
        self.masks[v as usize]
    }

    /// Whether lane `k` contains node `v`.
    #[must_use]
    pub fn lane_contains(&self, v: u32, lane: u32) -> bool {
        self.masks[v as usize] >> lane & 1 == 1
    }

    /// Lane `k`'s set size.
    #[must_use]
    pub fn count(&self, lane: u32) -> usize {
        self.counts.get(lane) as usize
    }

    /// The per-lane size counter (for snapshots and bit-sliced
    /// threshold masks).
    #[must_use]
    pub fn counts(&self) -> &LaneCounter {
        &self.counts
    }

    /// Number of nodes the set ranges over.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lane `k`'s set size inside the node range `start..end` — the
    /// batched sibling of [`InformedSet::count_range`].
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or out of bounds.
    #[must_use]
    pub fn count_range(&self, lane: u32, start: u32, end: u32) -> usize {
        assert!(start <= end, "inverted range");
        self.masks[start as usize..end as usize]
            .iter()
            .filter(|&&m| m >> lane & 1 == 1)
            .count()
    }
}

/// Seed-tree stream label for the per-(site) throttle (healing) coins
/// of a batched block — the second coin of a [`ThrottledFault`], drawn
/// from its own stream so it never collides with the fault coins at the
/// same site.
pub const THROTTLE_STREAM: u64 = 0x7407;

/// What a corrupted transmission does to its payload, i.e. which
/// adversary semantics a [`FaultModel`] instance realizes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CorruptionKind {
    /// The transmission is suppressed — the paper's omission faults
    /// (§2.1). Received bits can always be trusted.
    Silent,
    /// The transmission is delivered with its bit inverted — the
    /// opposite-behavior adversary of Theorem 2.3
    /// (`FlipMpAdversary` on the trait engines).
    Flip,
    /// The transmission is delivered carrying the constant lie `¬truth`
    /// — the lie half of the lie-or-jam radio adversary of Theorem 2.4
    /// under the limited-malicious clamp (only *scheduled* speakers can
    /// act, so the jam half is unreachable and lying is the binding
    /// behavior).
    Lie,
}

/// The coin tapes a [`FaultModel`] may read during a batched block:
/// the fault coins (shared stream with the omission kernels, so the
/// omission instance reads the very words the hard-wired kernels read)
/// plus the throttle coins of [`ThrottledFault`].
#[derive(Clone, Copy, Debug)]
pub struct FaultTapes {
    /// Per-(site) corruption coins ([`FAULT_STREAM`]).
    pub fault: BatchTape,
    /// Per-(site) keep/heal coins ([`THROTTLE_STREAM`]).
    pub throttle: BatchTape,
}

impl FaultTapes {
    /// Both tapes of one batched block.
    #[must_use]
    pub fn new(block_seed: u64) -> Self {
        FaultTapes {
            fault: BatchTape::new(block_seed, FAULT_STREAM),
            throttle: BatchTape::new(block_seed, THROTTLE_STREAM),
        }
    }
}

/// Error returned when a throttling target is infeasible: throttling
/// only *removes* corruption, so it needs `0 < p_target ≤ p < 1`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ThrottleError {
    /// The inner model's corruption probability.
    pub p: f64,
    /// The rejected target probability.
    pub p_target: f64,
}

impl std::fmt::Display for ThrottleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "need 0 < p_target <= p < 1 (got p_target={}, p={})",
            self.p_target, self.p
        )
    }
}

impl std::error::Error for ThrottleError {}

/// A fault model the fast kernels are parametric over: *which* sites
/// corrupt (a pure function of the site-addressed coin tapes plus any
/// preprocessed placement) and *what* corruption does to the payload
/// ([`CorruptionKind`]).
///
/// # The corruption-mask contract
///
/// `corrupt_mask(tapes, site, v, active)` returns the lanes of `active`
/// in which node `v`'s transmission at `site` is corrupted. Like
/// [`BatchBernoulli::mask`], restricting `active` never changes an
/// included lane's bit, and `corrupt_lane` is bit `k` of the full mask
/// exactly — the properties that make batched runs lane-exact with
/// scalar replays and sharded walks outcome-neutral (the mask depends
/// only on `(tapes, site, v)`, never on evaluation order).
///
/// # Placement preprocessing
///
/// Worst-case instances pin a node *set* instead of (or in addition to)
/// flipping per-round coins. Engines hand the model their topology once
/// per plan via [`preprocess_tree`](FaultModel::preprocess_tree) /
/// [`preprocess_graph`](FaultModel::preprocess_graph) (default no-ops)
/// before the first run; the placement then feeds `corrupt_mask`
/// through the node argument `v`.
pub trait FaultModel {
    /// What corruption does to the payload.
    fn kind(&self) -> CorruptionKind;

    /// The marginal per-(node, round) corruption probability (for
    /// display and feasibility prescriptions; placement instances
    /// report their budget fraction).
    fn rate(&self) -> f64;

    /// `Some(p)` when corruption is i.i.d. Bernoulli(`p`) per site,
    /// independent across sites — the license for [`Silent`]
    /// (`CorruptionKind::Silent`) models to reuse the coupled
    /// geometric/first-success omission kernels at the effective rate.
    ///
    /// [`Silent`]: CorruptionKind::Silent
    fn iid_rate(&self) -> Option<f64>;

    /// Stable display name (experiment tables, bench labels).
    fn name(&self) -> &'static str;

    /// Placement pass over a children-CSR broadcast tree (`order` is a
    /// root-first BFS order of the tree's nodes). Default: no-op.
    fn preprocess_tree(
        &mut self,
        child_offsets: &[u32],
        children: &[u32],
        order: &[u32],
        source: u32,
    ) {
        let _ = (child_offsets, children, order, source);
    }

    /// Placement pass over a symmetric adjacency CSR. Default: no-op.
    fn preprocess_graph(&mut self, offsets: &[u32], neighbors: &[u32], source: u32) {
        let _ = (offsets, neighbors, source);
    }

    /// The lanes of `active` in which node `v`'s transmission at `site`
    /// is corrupted.
    fn corrupt_mask(&self, tapes: &FaultTapes, site: u64, v: u32, active: LaneMask) -> LaneMask;

    /// Lane `k` of [`corrupt_mask`](Self::corrupt_mask), exactly.
    fn corrupt_lane(&self, tapes: &FaultTapes, site: u64, v: u32, lane: u32) -> bool {
        self.corrupt_mask(tapes, site, v, 1u64 << lane) >> lane & 1 == 1
    }
}

/// The paper's omission faults (§2.1) as a [`FaultModel`]: i.i.d.
/// Bernoulli(`p`) silent corruption, reading the [`FAULT_STREAM`] coins
/// exactly as the hard-wired omission kernels do — the instance the
/// byte-identity guarantee of the refactor is pinned against.
#[derive(Clone, Copy, Debug)]
pub struct Omission {
    p: f64,
    bern: BatchBernoulli,
}

impl Omission {
    /// Omission faults at per-(node, round) probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        Omission {
            p,
            bern: BatchBernoulli::new(p),
        }
    }
}

impl FaultModel for Omission {
    fn kind(&self) -> CorruptionKind {
        CorruptionKind::Silent
    }
    fn rate(&self) -> f64 {
        self.p
    }
    fn iid_rate(&self) -> Option<f64> {
        Some(self.p)
    }
    fn name(&self) -> &'static str {
        "omission"
    }
    fn corrupt_mask(&self, tapes: &FaultTapes, site: u64, _v: u32, active: LaneMask) -> LaneMask {
        self.bern.mask(&tapes.fault, site, active)
    }
    fn corrupt_lane(&self, tapes: &FaultTapes, site: u64, _v: u32, lane: u32) -> bool {
        self.bern.lane(&tapes.fault, site, lane)
    }
}

/// Theorem 2.3's opposite-behavior adversary as a [`FaultModel`]:
/// i.i.d. Bernoulli(`p`) faults whose transmissions are delivered with
/// the bit inverted (`FlipMpAdversary` semantics — identical under the
/// full and limited malicious clamps, since flipping only alters
/// *scheduled* transmissions).
#[derive(Clone, Copy, Debug)]
pub struct FlipFault {
    p: f64,
    bern: BatchBernoulli,
}

impl FlipFault {
    /// Flip faults at per-(node, round) probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        FlipFault {
            p,
            bern: BatchBernoulli::new(p),
        }
    }
}

impl FaultModel for FlipFault {
    fn kind(&self) -> CorruptionKind {
        CorruptionKind::Flip
    }
    fn rate(&self) -> f64 {
        self.p
    }
    fn iid_rate(&self) -> Option<f64> {
        Some(self.p)
    }
    fn name(&self) -> &'static str {
        "flip"
    }
    fn corrupt_mask(&self, tapes: &FaultTapes, site: u64, _v: u32, active: LaneMask) -> LaneMask {
        self.bern.mask(&tapes.fault, site, active)
    }
    fn corrupt_lane(&self, tapes: &FaultTapes, site: u64, _v: u32, lane: u32) -> bool {
        self.bern.lane(&tapes.fault, site, lane)
    }
}

/// The lie half of Theorem 2.4's lie-or-jam radio adversary under the
/// limited-malicious clamp, as a [`FaultModel`]: i.i.d. Bernoulli(`p`)
/// faults whose scheduled transmissions carry the constant lie
/// `¬truth` (with the repo's `SOURCE_BIT = true` convention, a lie is
/// `false` — a corrupted round contributes no vote for the truth).
/// Out-of-turn jamming is clamped away, so lying is the adversary's
/// only remaining move — see `LieOrJamAdversary` for the unclamped
/// trait-engine original.
#[derive(Clone, Copy, Debug)]
pub struct LieOrJamFault {
    p: f64,
    bern: BatchBernoulli,
}

impl LieOrJamFault {
    /// Lie faults at per-(node, round) probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        LieOrJamFault {
            p,
            bern: BatchBernoulli::new(p),
        }
    }
}

impl FaultModel for LieOrJamFault {
    fn kind(&self) -> CorruptionKind {
        CorruptionKind::Lie
    }
    fn rate(&self) -> f64 {
        self.p
    }
    fn iid_rate(&self) -> Option<f64> {
        Some(self.p)
    }
    fn name(&self) -> &'static str {
        "lie-or-jam"
    }
    fn corrupt_mask(&self, tapes: &FaultTapes, site: u64, _v: u32, active: LaneMask) -> LaneMask {
        self.bern.mask(&tapes.fault, site, active)
    }
    fn corrupt_lane(&self, tapes: &FaultTapes, site: u64, _v: u32, lane: u32) -> bool {
        self.bern.lane(&tapes.fault, site, lane)
    }
}

/// `adversary::Throttled` ported onto the kernel interface: each
/// corruption of the inner model independently *stays* with probability
/// `p_target / p` (one keep coin from the [`THROTTLE_STREAM`] tape) and
/// heals into a clean transmission otherwise, so the effective
/// corruption rate is exactly `p_target` while the fault *sites* remain
/// those of the inner model.
#[derive(Clone, Copy, Debug)]
pub struct ThrottledFault<M> {
    inner: M,
    keep: BatchBernoulli,
    keep_prob: f64,
}

impl<M: FaultModel> ThrottledFault<M> {
    /// Throttles `inner` down to effective rate `p_target`.
    ///
    /// # Errors
    ///
    /// Returns [`ThrottleError`] unless `0 < p_target ≤ p < 1` where
    /// `p = inner.rate()` — throttling can only remove corruption.
    pub fn try_new(inner: M, p_target: f64) -> Result<Self, ThrottleError> {
        let p = inner.rate();
        if !(0.0 < p_target && p_target <= p && p < 1.0) {
            return Err(ThrottleError { p, p_target });
        }
        let keep_prob = p_target / p;
        Ok(ThrottledFault {
            inner,
            keep: BatchBernoulli::new(keep_prob),
            keep_prob,
        })
    }
}

impl<M: FaultModel> FaultModel for ThrottledFault<M> {
    fn kind(&self) -> CorruptionKind {
        self.inner.kind()
    }
    fn rate(&self) -> f64 {
        self.inner.rate() * self.keep_prob
    }
    fn iid_rate(&self) -> Option<f64> {
        // An i.i.d. inner coin AND an independent i.i.d. keep coin is
        // itself i.i.d. at the product rate.
        self.inner.iid_rate().map(|p| p * self.keep_prob)
    }
    fn name(&self) -> &'static str {
        "throttled"
    }
    fn preprocess_tree(
        &mut self,
        child_offsets: &[u32],
        children: &[u32],
        order: &[u32],
        source: u32,
    ) {
        self.inner
            .preprocess_tree(child_offsets, children, order, source);
    }
    fn preprocess_graph(&mut self, offsets: &[u32], neighbors: &[u32], source: u32) {
        self.inner.preprocess_graph(offsets, neighbors, source);
    }
    fn corrupt_mask(&self, tapes: &FaultTapes, site: u64, v: u32, active: LaneMask) -> LaneMask {
        let hit = self.inner.corrupt_mask(tapes, site, v, active);
        self.keep.mask(&tapes.throttle, site, hit)
    }
}

/// Per-node subtree sizes of a children-CSR broadcast tree, computed by
/// one reverse sweep over a root-first BFS `order` (children precede no
/// ancestor in reverse order, so each node's size is final when read).
/// Nodes outside `order` (unreachable) keep size 0.
#[must_use]
pub fn subtree_sizes(child_offsets: &[u32], children: &[u32], order: &[u32]) -> Vec<u64> {
    let mut size = vec![0u64; child_offsets.len().saturating_sub(1)];
    for &u in order.iter().rev() {
        let ui = u as usize;
        let mut s = 1u64;
        for &c in &children[child_offsets[ui] as usize..child_offsets[ui + 1] as usize] {
            s += size[c as usize];
        }
        size[ui] = s;
    }
    size
}

/// Godard–Peters-style adversarial fault *placement* as a
/// [`FaultModel`]: the preprocessing pass pins the `⌈frac · (n − 1)⌉`
/// non-source nodes with the heaviest cut weight — subtree size on a
/// broadcast tree (corrupting `v` severs `v`'s whole subtree), degree
/// on a radio adjacency — as *always* corrupt; everyone else is always
/// clean. No per-round coins are read, so the placement composes with
/// any site addressing. Deterministic: ties break toward the smaller
/// node id.
#[derive(Clone, Debug)]
pub struct WorstCasePlacement {
    frac: f64,
    kind: CorruptionKind,
    placed: Vec<u64>,
    placed_count: usize,
}

impl WorstCasePlacement {
    /// A placement adversary corrupting a `frac` fraction of the
    /// non-source nodes with `kind` semantics. The placement itself is
    /// empty until a `preprocess_*` pass runs.
    ///
    /// # Panics
    ///
    /// Panics if `frac ∉ [0, 1]`.
    #[must_use]
    pub fn new(frac: f64, kind: CorruptionKind) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac),
            "placement fraction out of range"
        );
        WorstCasePlacement {
            frac,
            kind,
            placed: Vec::new(),
            placed_count: 0,
        }
    }

    /// Whether node `v` is pinned corrupt.
    #[must_use]
    pub fn is_placed(&self, v: u32) -> bool {
        self.placed
            .get(v as usize / 64)
            .is_some_and(|w| w >> (v % 64) & 1 == 1)
    }

    /// Number of pinned nodes (0 before preprocessing).
    #[must_use]
    pub fn placed_count(&self) -> usize {
        self.placed_count
    }

    /// Pins the top-`⌈frac · (n − 1)⌉` non-source nodes by
    /// `(weight desc, id asc)`.
    fn place_by_weights(&mut self, weights: &[u64], source: u32) {
        let n = weights.len();
        self.placed = vec![0u64; n.div_ceil(64)];
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let budget = (self.frac * n.saturating_sub(1) as f64).ceil() as usize;
        let mut ranked: Vec<u32> = (0..n as u32).filter(|&v| v != source).collect();
        ranked.sort_unstable_by_key(|&v| (std::cmp::Reverse(weights[v as usize]), v));
        self.placed_count = budget.min(ranked.len());
        for &v in &ranked[..self.placed_count] {
            self.placed[v as usize / 64] |= 1u64 << (v % 64);
        }
    }
}

impl FaultModel for WorstCasePlacement {
    fn kind(&self) -> CorruptionKind {
        self.kind
    }
    fn rate(&self) -> f64 {
        self.frac
    }
    fn iid_rate(&self) -> Option<f64> {
        None
    }
    fn name(&self) -> &'static str {
        "worst-case-placement"
    }
    fn preprocess_tree(
        &mut self,
        child_offsets: &[u32],
        children: &[u32],
        order: &[u32],
        source: u32,
    ) {
        let weights = subtree_sizes(child_offsets, children, order);
        self.place_by_weights(&weights, source);
    }
    fn preprocess_graph(&mut self, offsets: &[u32], _neighbors: &[u32], source: u32) {
        let weights: Vec<u64> = offsets.windows(2).map(|w| u64::from(w[1] - w[0])).collect();
        self.place_by_weights(&weights, source);
    }
    fn corrupt_mask(&self, _tapes: &FaultTapes, _site: u64, v: u32, active: LaneMask) -> LaneMask {
        if self.is_placed(v) {
            active
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn informed_set_tracks_membership_and_count() {
        let mut s = InformedSet::new(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0), "double insert reports false");
        assert!(s.insert(129));
        assert!(s.insert(64));
        assert_eq!(s.count(), 3);
        assert!(s.contains(129));
        assert!(!s.contains(65));
    }

    #[test]
    fn count_range_sums_to_the_total_over_any_partition() {
        let mut s = InformedSet::new(300);
        for v in [0u32, 1, 63, 64, 65, 128, 199, 200, 255, 299] {
            s.insert(v);
        }
        for bounds in [
            vec![0u32, 300],
            vec![0, 100, 200, 300],
            vec![0, 7, 64, 65, 130, 300],
        ] {
            let total: usize = bounds.windows(2).map(|w| s.count_range(w[0], w[1])).sum();
            assert_eq!(total, s.count(), "bounds {bounds:?}");
        }
        assert_eq!(s.count_range(0, 0), 0);
        assert_eq!(s.count_range(64, 66), 2);
        assert_eq!(s.count_range(65, 128), 1);
        // Batched sibling: lane-sliced range counts partition the same way.
        let mut b = BatchedInformedSet::new(300);
        b.insert_masked(3, 0b101);
        b.insert_masked(299, 0b001);
        assert_eq!(b.count_range(0, 0, 300), 2);
        assert_eq!(b.count_range(2, 0, 300), 1);
        assert_eq!(b.count_range(0, 4, 300), 1);
        assert_eq!(b.count_range(1, 0, 300), 0);
    }

    #[test]
    fn shard_frontier_routes_and_refills() {
        let mut cur = ShardFrontier::new(3);
        let mut nxt = ShardFrontier::new(3);
        assert!(cur.is_empty());
        cur.push(0, 5);
        cur.push(2, 9);
        cur.push(2, 11);
        assert_eq!(cur.total_len(), 3);
        assert_eq!(cur.shard(2), &[9, 11]);
        nxt.push(1, 7);
        nxt.push(1, 8);
        cur.refill_from(&mut nxt, 1, |v| v != 7);
        assert_eq!(cur.shard(1), &[8]);
        assert!(nxt.shard(1).is_empty(), "staged list drained");
        // Refilling from an empty staged shard clears the target list.
        cur.refill_from(&mut nxt, 2, |_| true);
        assert!(cur.shard(2).is_empty());
        cur.clear();
        assert!(cur.is_empty());
    }

    #[test]
    fn sharded_collisions_replay_the_monolithic_drain_per_shard() {
        let bounds = [0u32, 40, 90, 120];
        let n = 120usize;
        let shard_of = |v: u32| bounds.partition_point(|&b| b <= v) - 1;
        let mut rng = SmallRng::seed_from_u64(7);
        for round in 0..20 {
            use rand::Rng;
            let adds: Vec<u32> = (0..rng.gen_range(0..200))
                .map(|_| rng.gen_range(0..n as u32))
                .collect();
            // Reference: the monolithic counter's global drain order,
            // restricted per listener shard.
            let mut mono = CollisionCounter::new(n);
            for &v in &adds {
                mono.add(v);
            }
            let mut want: Vec<Vec<u32>> = vec![Vec::new(); 3];
            mono.drain_sole_receivers(|v| want[shard_of(v)].push(v));
            for threads in [1usize, 2, 8] {
                let mut sharded = ShardedCollisions::new(&bounds);
                for &v in &adds {
                    sharded.add(v);
                }
                let mut got: Vec<Vec<u32>> = vec![Vec::new(); 3];
                let mut last_shard = 0usize;
                sharded.drain_sole_receivers(threads, |s, v| {
                    assert!(s >= last_shard, "shards must drain ascending");
                    last_shard = s;
                    got[s].push(v);
                });
                assert_eq!(got, want, "round {round}, threads {threads}");
                // Counter must be fully reset for the next round.
                assert_eq!(sharded.touched_len(), 0);
                sharded.add(3);
                let mut seen = Vec::new();
                sharded.drain_sole_receivers(1, |_, v| seen.push(v));
                assert_eq!(seen, vec![3]);
            }
        }
    }

    #[test]
    fn range_passes_move_state_and_keep_ascending_order() {
        for threads in [1usize, 2, 3, 16] {
            let state: Vec<String> = (0..7).map(|i| format!("s{i}")).collect();
            let out = range_passes(state, threads, |s, owned: String| format!("{s}:{owned}"));
            let want: Vec<String> = (0..7).map(|i| format!("{i}:s{i}")).collect();
            assert_eq!(out, want, "threads {threads}");
        }
        assert!(range_passes(Vec::<u8>::new(), 4, |_, x| x).is_empty());
    }

    #[test]
    fn add_counter_matches_per_lane_scalar_addition() {
        let mut rng = SmallRng::seed_from_u64(11);
        use rand::Rng;
        for _ in 0..50 {
            let a_counts: [u32; LANES] = std::array::from_fn(|_| rng.gen_range(0..500));
            let b_counts: [u32; LANES] = std::array::from_fn(|_| rng.gen_range(0..500));
            let mut a = LaneCounter::from_counts(&a_counts);
            let b = LaneCounter::from_counts(&b_counts);
            a.add_counter(&b);
            for lane in 0..LANES as u32 {
                assert_eq!(
                    a.get(lane),
                    u64::from(a_counts[lane as usize]) + u64::from(b_counts[lane as usize])
                );
            }
        }
        // Adding an empty counter is the identity.
        let mut c = LaneCounter::from_counts(&[3u32; LANES]);
        c.add_counter(&LaneCounter::new());
        assert_eq!(c.get(0), 3);
    }

    #[test]
    fn skip_mean_matches_geometric_expectation() {
        // E[failures before a success] = p / (1 − p).
        let mut rng = SmallRng::seed_from_u64(3);
        for p in [0.8, 0.9, 0.97] {
            let ln_p = f64::ln(p);
            let trials = 20_000;
            let total: f64 = (0..trials)
                .map(|_| geometric_skip(&mut rng, ln_p) as f64)
                .sum();
            let mean = total / f64::from(trials);
            let expected = p / (1.0 - p);
            assert!(
                (mean - expected).abs() < 0.08 * expected,
                "p={p}: mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn partition_preserves_order_and_covers_input() {
        let input: Vec<u32> = (0..500).collect();
        for p in [0.0, 0.3, 0.9] {
            let sampler = FaultSampler::new(p);
            let mut rng = SmallRng::seed_from_u64(7);
            let (mut ok, mut fail) = (Vec::new(), Vec::new());
            sampler.partition_into(&mut rng, &input, &mut ok, &mut fail);
            assert_eq!(ok.len() + fail.len(), input.len(), "p={p}");
            assert!(ok.windows(2).all(|w| w[0] < w[1]));
            assert!(fail.windows(2).all(|w| w[0] < w[1]));
            let mut merged = [ok.clone(), fail.clone()].concat();
            merged.sort_unstable();
            assert_eq!(merged, input, "p={p}");
        }
    }

    #[test]
    fn successes_match_partition_successes_exactly() {
        // Same seed ⇒ the two entry points must agree on the success
        // set (they share one draw order by construction).
        let input: Vec<u32> = (0..300).map(|i| i * 3).collect();
        for p in [0.1, 0.5, 0.76, 0.95] {
            let sampler = FaultSampler::new(p);
            let mut a = SmallRng::seed_from_u64(11);
            let mut b = SmallRng::seed_from_u64(11);
            let (mut ok1, mut fail) = (Vec::new(), Vec::new());
            let mut ok2 = Vec::new();
            sampler.partition_into(&mut a, &input, &mut ok1, &mut fail);
            sampler.successes_into(&mut b, &input, &mut ok2);
            assert_eq!(ok1, ok2, "p={p}");
        }
    }

    #[test]
    fn success_rate_tracks_one_minus_p_across_the_switch() {
        let input: Vec<u32> = (0..2000).collect();
        for p in [0.74, 0.76] {
            let sampler = FaultSampler::new(p);
            let mut total = 0usize;
            let reps = 50;
            for seed in 0..reps {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut ok = Vec::new();
                sampler.successes_into(&mut rng, &input, &mut ok);
                total += ok.len();
            }
            let rate = total as f64 / (reps as usize * input.len()) as f64;
            assert!((rate - (1.0 - p)).abs() < 0.01, "p={p}: rate {rate}");
        }
    }

    #[test]
    fn first_success_is_monotone_in_p_per_seed() {
        for seed in 0..50u64 {
            let mut prev = 0usize;
            for p in [0.0, 0.2, 0.5, 0.8, 0.95] {
                let mut rng = SmallRng::seed_from_u64(seed);
                let t = FaultSampler::new(p).first_success(&mut rng);
                assert!(t >= prev, "seed={seed} p={p}: {t} < {prev}");
                prev = t;
            }
        }
    }

    #[test]
    fn first_success_mean_matches_geometric() {
        let sampler = FaultSampler::new(0.6);
        let mut rng = SmallRng::seed_from_u64(5);
        let trials = 20_000;
        let total: usize = (0..trials).map(|_| sampler.first_success(&mut rng)).sum();
        let mean = total as f64 / trials as f64;
        let expected = 0.6 / 0.4;
        assert!((mean - expected).abs() < 0.05 * expected, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sampler_rejects_p_one() {
        let _ = FaultSampler::new(1.0);
    }

    #[test]
    fn collision_counter_finds_sole_receivers() {
        let mut c = CollisionCounter::new(10);
        c.add(3);
        c.add(5);
        c.add(5); // collision
        c.add(7);
        let mut heard = Vec::new();
        c.drain_sole_receivers(|v| heard.push(v));
        assert_eq!(heard, vec![3, 7]);
        // Counter resets fully between rounds.
        c.add(5);
        let mut heard2 = Vec::new();
        c.drain_sole_receivers(|v| heard2.push(v));
        assert_eq!(heard2, vec![5]);
    }

    #[test]
    fn collision_counter_saturates_instead_of_wrapping() {
        let mut c = CollisionCounter::new(2);
        for _ in 0..300 {
            c.add(1);
        }
        let mut heard = Vec::new();
        c.drain_sole_receivers(|v| heard.push(v));
        assert!(heard.is_empty(), "255+ transmitters is still a collision");
    }

    #[test]
    fn lane_mask_first_selects_a_prefix() {
        assert_eq!(lane_mask_first(0), 0);
        assert_eq!(lane_mask_first(1), 1);
        assert_eq!(lane_mask_first(5), 0b11111);
        assert_eq!(lane_mask_first(64), !0);
        assert_eq!(lane_mask_first(1000), !0);
    }

    #[test]
    fn batch_mask_and_lane_view_agree_bit_for_bit() {
        let tape = BatchTape::new(42, FAULT_STREAM);
        for p in [0.0, 0.3, 0.5, 0.76, 0.9, 1.0] {
            let bern = BatchBernoulli::new(p);
            for site in 0..200u64 {
                let full = bern.mask(&tape, site, !0);
                for lane in 0..64 {
                    assert_eq!(
                        full >> lane & 1 == 1,
                        bern.lane(&tape, site, lane),
                        "p={p} site={site} lane={lane}"
                    );
                }
                // Restricting the active mask never changes an
                // included lane's coin.
                let half = bern.mask(&tape, site, 0xAAAA_AAAA_AAAA_AAAA);
                assert_eq!(half, full & 0xAAAA_AAAA_AAAA_AAAA, "p={p} site={site}");
            }
        }
    }

    #[test]
    fn batch_lane_matches_uniform53_threshold() {
        // The lane view is exactly `uniform53 < ⌈p·2^53⌉` — the same
        // acceptance set as the vendored rand's `gen_bool`.
        let tape = BatchTape::new(7, FAULT_STREAM);
        for p in [0.25, 0.76] {
            let bern = BatchBernoulli::new(p);
            let tint = (p * (1u64 << 53) as f64).ceil() as u64;
            for site in 0..50u64 {
                for lane in [0u32, 17, 63] {
                    let m = tape.uniform53(site, lane);
                    assert!(m < 1 << 53);
                    assert_eq!(bern.lane(&tape, site, lane), m < tint);
                }
            }
        }
    }

    #[test]
    fn batch_coin_rate_tracks_p_in_both_regimes() {
        // Across the scalar sampler's dense/sparse boundary the batch
        // coins must hit probability p; 64 lanes × 4000 sites gives a
        // standard error ≈ 0.001.
        let tape = BatchTape::new(99, FAULT_STREAM);
        for p in [0.3, 0.76, 0.9] {
            let bern = BatchBernoulli::new(p);
            let total: u32 = (0..4000u64)
                .map(|site| bern.mask(&tape, site, !0).count_ones())
                .sum();
            let rate = f64::from(total) / (4000.0 * 64.0);
            assert!((rate - p).abs() < 0.005, "p={p}: rate {rate}");
        }
    }

    #[test]
    fn fair_mask_is_unbiased_and_matches_lane_view() {
        let tape = BatchTape::new(3, DECAY_STREAM);
        let mut ones = 0u32;
        for site in 0..2000u64 {
            let w = tape.fair_mask(site);
            ones += w.count_ones();
            for lane in [0u32, 31, 63] {
                assert_eq!(tape.fair_lane(site, lane), w >> lane & 1 == 1);
            }
        }
        let rate = f64::from(ones) / (2000.0 * 64.0);
        assert!((rate - 0.5).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn tape_streams_are_decorrelated() {
        let fault = BatchTape::new(5, FAULT_STREAM);
        let decay = BatchTape::new(5, DECAY_STREAM);
        let same = (0..64u64)
            .filter(|&s| fault.word(s, 0) == decay.word(s, 0))
            .count();
        assert_eq!(same, 0, "streams must not share words");
    }

    #[test]
    fn lane_counter_add_and_compare_match_scalar_counts() {
        let mut c = LaneCounter::new();
        let mut reference = [0u64; 64];
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..200 {
            let mask: u64 = rng.gen();
            let amount = rng.gen_range(0u64..5);
            c.add_masked(mask, amount);
            for (lane, r) in reference.iter_mut().enumerate() {
                if mask >> lane & 1 == 1 {
                    *r += amount;
                }
            }
        }
        for lane in 0..64u32 {
            assert_eq!(c.get(lane), reference[lane as usize], "lane {lane}");
            assert_eq!(
                LaneCounter::get_in(c.planes(), lane),
                reference[lane as usize]
            );
        }
        for threshold in [0u64, 1, 17, 250, 300, 1000] {
            let ge = c.ge_mask(threshold);
            let eq = c.eq_mask(threshold);
            for lane in 0..64u32 {
                let count = reference[lane as usize];
                assert_eq!(ge >> lane & 1 == 1, count >= threshold, "ge {threshold}");
                assert_eq!(eq >> lane & 1 == 1, count == threshold, "eq {threshold}");
            }
        }
    }

    #[test]
    fn batched_informed_set_tracks_lanes_and_counts() {
        let mut s = BatchedInformedSet::new(10);
        assert_eq!(s.insert_masked(3, 0b101), 0b101);
        assert_eq!(s.insert_masked(3, 0b111), 0b010, "only the new lane");
        assert_eq!(s.insert_masked(3, 0b111), 0, "no-op reinsert");
        assert!(s.lane_contains(3, 0));
        assert!(!s.lane_contains(4, 0));
        assert_eq!(s.lanes(3), 0b111);
        s.insert_masked(7, 0b001);
        assert_eq!(s.count(0), 2);
        assert_eq!(s.count(1), 1);
        assert_eq!(s.count(63), 0);
        assert_eq!(s.counts().eq_mask(2), 0b001);
        assert_eq!(s.counts().ge_mask(1), 0b111);
        assert_eq!(s.n(), 10);
    }

    #[test]
    fn lane_popcounts_matches_naive_and_counter_construction() {
        // A non-multiple-of-64 length exercises the zero-padded tail.
        let masks: Vec<u64> = (0..157u64)
            .map(|i| splitmix64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        let counts = lane_popcounts(&masks);
        let mut reference = LaneCounter::new();
        for &m in &masks {
            reference.add_masked(m, 1);
        }
        for lane in 0..LANES as u32 {
            let naive = masks.iter().filter(|&&m| m >> lane & 1 == 1).count() as u64;
            assert_eq!(u64::from(counts[lane as usize]), naive, "lane {lane}");
            assert_eq!(reference.get(lane), naive);
        }
        let rebuilt = LaneCounter::from_counts(&counts);
        assert_eq!(rebuilt.planes(), reference.planes());
    }

    /// Packs 64 per-lane values into little-endian bit planes.
    fn to_planes(values: &[u64; 64], width: usize) -> Vec<u64> {
        let mut planes = vec![0u64; width];
        for (lane, &v) in values.iter().enumerate() {
            for (i, plane) in planes.iter_mut().enumerate() {
                *plane |= (v >> i & 1) << lane;
            }
        }
        planes
    }

    #[test]
    fn plane_compare_assign_and_add_match_scalar_lanes() {
        let mut a = [0u64; 64];
        let mut b = [0u64; 64];
        let mut state = 41u64;
        for lane in 0..64 {
            state = splitmix64(state);
            a[lane] = state % 200;
            state = splitmix64(state);
            b[lane] = state % 200;
        }
        let width = 8;
        let pa = to_planes(&a, width);
        let pb = to_planes(&b, width);

        for k in [0u64, 1, 63, 128, 199, 255, 256, 1000] {
            let le = planes_le_mask(&pa, k);
            for (lane, &av) in a.iter().enumerate() {
                assert_eq!(le >> lane & 1 == 1, av <= k, "k={k} lane={lane}");
            }
        }
        let gt = planes_gt_mask(&pa, &pb);
        for lane in 0..64 {
            assert_eq!(gt >> lane & 1 == 1, a[lane] > b[lane], "lane={lane}");
        }
        for k in [0u64, 7, 42, 199, 255, 300] {
            let eq = planes_eq_mask(&pa, k);
            for (lane, &av) in a.iter().enumerate() {
                assert_eq!(eq >> lane & 1 == 1, av == k, "k={k} lane={lane}");
            }
        }
        for (lo, hi) in [(0u64, 5u64), (17, 42), (199, 255), (250, 300)] {
            let (le_lo, le_hi) = planes_le2_mask(&pa, lo, hi);
            assert_eq!(le_lo, planes_le_mask(&pa, lo), "lo={lo}");
            assert_eq!(le_hi, planes_le_mask(&pa, hi), "hi={hi}");
        }

        let m = 0xAAAA_5555_0F0F_F0F0u64;
        let mut dst = pb.clone();
        planes_assign(&mut dst, &pa, m);
        for lane in 0..64u32 {
            let expect = if m >> lane & 1 == 1 { a } else { b };
            assert_eq!(LaneCounter::get_in(&dst, lane), expect[lane as usize]);
        }

        let mut sum = pb.clone();
        planes_add_const(&mut sum, &pa, 37, m);
        for lane in 0..64u32 {
            let expect = if m >> lane & 1 == 1 {
                a[lane as usize] + 37
            } else {
                b[lane as usize]
            };
            assert_eq!(LaneCounter::get_in(&sum, lane), expect, "lane={lane}");
        }

        // base + addend + 1, with a narrower addend (top planes zero).
        let mut addend = [0u64; 64];
        for lane in 0..64 {
            addend[lane] = b[lane] % 32;
        }
        let p_add = to_planes(&addend, 5);
        let mut sum1 = vec![0u64; width];
        planes_add_one_masked(&mut sum1, &pa, &p_add, m, &pb);
        for lane in 0..64u32 {
            let expect = if m >> lane & 1 == 1 {
                a[lane as usize] + addend[lane as usize] + 1
            } else {
                b[lane as usize]
            };
            assert_eq!(LaneCounter::get_in(&sum1, lane), expect, "lane={lane}");
        }
    }

    #[test]
    fn omission_model_reads_the_omission_fault_words_exactly() {
        // The byte-identity anchor: the omission instance's corruption
        // coins are the very FAULT_STREAM coins the hard-wired kernels
        // draw at the same sites.
        let tapes = FaultTapes::new(77);
        let reference_tape = BatchTape::new(77, FAULT_STREAM);
        for p in [0.0, 0.3, 0.76] {
            let model = Omission::new(p);
            let bern = BatchBernoulli::new(p);
            for site in 0..100u64 {
                assert_eq!(
                    model.corrupt_mask(&tapes, site, 9, !0),
                    bern.mask(&reference_tape, site, !0),
                    "p={p} site={site}"
                );
            }
        }
    }

    #[test]
    fn fault_models_are_lane_exact_and_active_restrictable() {
        let tapes = FaultTapes::new(13);
        let throttled = ThrottledFault::try_new(FlipFault::new(0.6), 0.2).unwrap();
        let mut placed = WorstCasePlacement::new(0.5, CorruptionKind::Flip);
        // Star around node 0: ranked by degree, nodes 1..=2 get pinned.
        placed.preprocess_graph(&[0, 4, 5, 6, 7, 8], &[1, 2, 3, 4, 0, 0, 0, 0], 0);
        let models: [&dyn FaultModel; 4] = [
            &Omission::new(0.4),
            &LieOrJamFault::new(0.3),
            &throttled,
            &placed,
        ];
        for model in models {
            for site in 0..60u64 {
                for v in [0u32, 1, 3] {
                    let full = model.corrupt_mask(&tapes, site, v, !0);
                    for lane in [0u32, 17, 63] {
                        assert_eq!(
                            full >> lane & 1 == 1,
                            model.corrupt_lane(&tapes, site, v, lane),
                            "{} site={site} v={v} lane={lane}",
                            model.name()
                        );
                    }
                    let half = model.corrupt_mask(&tapes, site, v, 0x5555_5555_5555_5555);
                    assert_eq!(half, full & 0x5555_5555_5555_5555, "{}", model.name());
                }
            }
        }
    }

    #[test]
    fn throttled_rate_hits_the_target() {
        // p = 0.6 faults kept with probability 1/3 must corrupt at 0.2;
        // 64 lanes x 4000 sites gives SE ~ 0.0008.
        let tapes = FaultTapes::new(21);
        let model = ThrottledFault::try_new(Omission::new(0.6), 0.2).unwrap();
        assert!((model.rate() - 0.2).abs() < 1e-12);
        assert_eq!(
            model.iid_rate().map(|r| (r - 0.2).abs() < 1e-12),
            Some(true)
        );
        let total: u32 = (0..4000u64)
            .map(|site| model.corrupt_mask(&tapes, site, 5, !0).count_ones())
            .sum();
        let rate = f64::from(total) / (4000.0 * 64.0);
        assert!((rate - 0.2).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn throttle_error_rejects_infeasible_targets() {
        for (p, p_target) in [(0.3, 0.4), (0.3, 0.0), (0.3, -0.1)] {
            let err = ThrottledFault::try_new(Omission::new(p), p_target).unwrap_err();
            assert_eq!(err, ThrottleError { p, p_target });
            assert!(err.to_string().contains("p_target"), "{err}");
        }
        // Boundary: p_target == p keeps every fault.
        let same = ThrottledFault::try_new(Omission::new(0.3), 0.3).unwrap();
        assert!((same.rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn subtree_sizes_match_a_hand_tree() {
        // 0 -> {1, 2}, 1 -> {3, 4}, 4 -> {5}; node 6 unreachable.
        let child_offsets = [0u32, 2, 4, 4, 4, 5, 5, 5];
        let children = [1u32, 2, 3, 4, 5];
        let order = [0u32, 1, 2, 3, 4, 5];
        let sizes = subtree_sizes(&child_offsets, &children, &order);
        assert_eq!(sizes, vec![6, 4, 1, 1, 2, 1, 0]);
    }

    #[test]
    fn placement_pins_cut_maximizing_nodes_deterministically() {
        // Same tree: by subtree size the ranking (source excluded) is
        // 1 (4), 4 (2), then the ties 2/3/5 (1 each) by id, then 6 (0).
        let child_offsets = [0u32, 2, 4, 4, 4, 5, 5, 5];
        let children = [1u32, 2, 3, 4, 5];
        let order = [0u32, 1, 2, 3, 4, 5];
        let mut m = WorstCasePlacement::new(0.5, CorruptionKind::Silent);
        m.preprocess_tree(&child_offsets, &children, &order, 0);
        // ceil(0.5 * 6) = 3 pinned: nodes 1, 4, 2.
        assert_eq!(m.placed_count(), 3);
        for v in [1u32, 4, 2] {
            assert!(m.is_placed(v), "node {v}");
        }
        for v in [0u32, 3, 5, 6] {
            assert!(!m.is_placed(v), "node {v}");
        }
        let tapes = FaultTapes::new(1);
        assert_eq!(m.corrupt_mask(&tapes, 9, 1, !0), !0);
        assert_eq!(m.corrupt_mask(&tapes, 9, 3, !0), 0);
        // frac = 1 pins every non-source node that exists.
        let mut all = WorstCasePlacement::new(1.0, CorruptionKind::Flip);
        all.preprocess_tree(&child_offsets, &children, &order, 0);
        assert_eq!(all.placed_count(), 6);
        assert!(!all.is_placed(0), "source never pinned");
    }
}
