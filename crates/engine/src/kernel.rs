//! The shared large-`n` simulation kernel: the informed bitmask,
//! aggregate fault samplers, and collision-counting scratch that the
//! fast-path engines ([`crate::flood_fast`], [`crate::radio_fast`],
//! [`crate::simple_fast`]) are built from.
//!
//! Before this module each fast engine owned a private copy of the same
//! machinery (bitmask words, the `p > 0.75` geometric-skip switch, the
//! touched-list counter). Centralizing it means one implementation to
//! audit for the sampling invariants below — and one place where the
//! RNG draw order is defined, which the per-seed reproducibility
//! guarantees of the engines depend on.
//!
//! # Sampling invariants
//!
//! [`FaultSampler`] draws **exactly one** `f64`/`bool` per input element
//! in the dense regime and one `f64` per *success* (plus one trailing
//! miss) in the sparse regime, in input order. The dense/sparse switch
//! is a pure function of `p` (`p > 0.75`), so two runs with the same
//! seed and `p` observe identical RNG streams regardless of which
//! engine drives the sampler.

use rand::rngs::SmallRng;
use rand::Rng;

/// A word-level node bitmask with a running popcount — the informed
/// (or correct) set of a broadcast kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InformedSet {
    words: Vec<u64>,
    count: usize,
}

impl InformedSet {
    /// An empty set over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        InformedSet {
            words: vec![0u64; n.div_ceil(64)],
            count: 0,
        }
    }

    /// Inserts node `v`; returns whether it was newly inserted.
    pub fn insert(&mut self, v: u32) -> bool {
        let (w, b) = (v as usize / 64, 1u64 << (v % 64));
        if self.words[w] & b == 0 {
            self.words[w] |= b;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Whether node `v` is in the set.
    #[must_use]
    pub fn contains(&self, v: u32) -> bool {
        self.words[v as usize / 64] & (1u64 << (v % 64)) != 0
    }

    /// Number of nodes in the set.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Aggregate per-round Bernoulli fault sampling over a participant
/// list: each element independently *succeeds* (transmitter works) with
/// probability `1 − p`.
///
/// Dense regime (`p ≤ 0.75`): one coin per element. Sparse regime
/// (`p > 0.75`): successes are rare, so the sampler jumps directly
/// between them with geometric skips and the cost is proportional to
/// the number of successes, not the participant count.
#[derive(Clone, Copy, Debug)]
pub struct FaultSampler {
    p: f64,
    /// `ln p`, precomputed for the sparse regime (0 when unused).
    ln_p: f64,
    sparse: bool,
}

impl FaultSampler {
    /// A sampler for per-(node, round) failure probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        FaultSampler {
            p,
            ln_p: if p > 0.0 { p.ln() } else { 0.0 },
            sparse: p > 0.75,
        }
    }

    /// The failure probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Samples one round over `input`, appending successful elements to
    /// `successes` and failed ones to `failures` (relative order
    /// preserved in both). Neither vector is cleared.
    pub fn partition_into(
        &self,
        rng: &mut SmallRng,
        input: &[u32],
        successes: &mut Vec<u32>,
        failures: &mut Vec<u32>,
    ) {
        if self.p == 0.0 {
            successes.extend_from_slice(input);
        } else if self.sparse {
            // Jump between successful elements: the number of failures
            // before the next success is Geometric(1 − p). Everything
            // skipped over failed.
            let mut prev = 0usize;
            let mut idx = geometric_skip(rng, self.ln_p);
            while idx < input.len() {
                failures.extend_from_slice(&input[prev..idx]);
                successes.push(input[idx]);
                prev = idx + 1;
                idx = prev.saturating_add(geometric_skip(rng, self.ln_p));
            }
            failures.extend_from_slice(&input[prev..]);
        } else {
            for &u in input {
                if rng.gen_bool(self.p) {
                    failures.push(u);
                } else {
                    successes.push(u);
                }
            }
        }
    }

    /// Samples one round over `input`, appending only the successful
    /// elements to `successes` (failures are discarded). Draws the same
    /// RNG stream as [`partition_into`](Self::partition_into).
    pub fn successes_into(&self, rng: &mut SmallRng, input: &[u32], successes: &mut Vec<u32>) {
        if self.p == 0.0 {
            successes.extend_from_slice(input);
        } else if self.sparse {
            let mut idx = geometric_skip(rng, self.ln_p);
            while idx < input.len() {
                successes.push(input[idx]);
                idx = (idx + 1).saturating_add(geometric_skip(rng, self.ln_p));
            }
        } else {
            successes.extend(input.iter().copied().filter(|_| !rng.gen_bool(self.p)));
        }
    }

    /// The number of failures before the first success when each trial
    /// independently fails with probability `p` — the index of the
    /// first working transmission in a phase, `usize::MAX`-saturated.
    /// One uniform drives the draw, so for a fixed RNG stream the
    /// result is monotone nondecreasing in `p` (the coupling the
    /// monotonicity property tests rely on).
    pub fn first_success(&self, rng: &mut SmallRng) -> usize {
        if self.p == 0.0 {
            0
        } else {
            geometric_skip(rng, self.ln_p)
        }
    }
}

/// Number of failures before the next success when each trial fails
/// with probability `p = exp(ln_p)`: `⌊ln(U) / ln(p)⌋` for uniform
/// `U ∈ (0, 1]`.
fn geometric_skip(rng: &mut SmallRng, ln_p: f64) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    // 1 − u ∈ (0, 1]: avoids ln(0).
    let skip = (1.0 - u).ln() / ln_p;
    if skip >= usize::MAX as f64 {
        usize::MAX
    } else {
        skip as usize
    }
}

/// Saturating per-listener transmitter counts with a touched list, so a
/// radio round's collision resolution costs only its frontier
/// neighborhoods (2 already means "collision").
#[derive(Clone, Debug)]
pub struct CollisionCounter {
    counts: Vec<u8>,
    touched: Vec<u32>,
}

impl CollisionCounter {
    /// A zeroed counter over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        CollisionCounter {
            counts: vec![0u8; n],
            touched: Vec::new(),
        }
    }

    /// Records one transmission reaching listener `v`.
    pub fn add(&mut self, v: u32) {
        let vi = v as usize;
        if self.counts[vi] == 0 {
            self.touched.push(v);
        }
        self.counts[vi] = self.counts[vi].saturating_add(1);
    }

    /// Visits every listener that heard **exactly one** transmitter (in
    /// touch order), then resets the counter for the next round.
    pub fn drain_sole_receivers(&mut self, mut hear: impl FnMut(u32)) {
        for i in 0..self.touched.len() {
            let v = self.touched[i];
            if self.counts[v as usize] == 1 {
                hear(v);
            }
            self.counts[v as usize] = 0;
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn informed_set_tracks_membership_and_count() {
        let mut s = InformedSet::new(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0), "double insert reports false");
        assert!(s.insert(129));
        assert!(s.insert(64));
        assert_eq!(s.count(), 3);
        assert!(s.contains(129));
        assert!(!s.contains(65));
    }

    #[test]
    fn skip_mean_matches_geometric_expectation() {
        // E[failures before a success] = p / (1 − p).
        let mut rng = SmallRng::seed_from_u64(3);
        for p in [0.8, 0.9, 0.97] {
            let ln_p = f64::ln(p);
            let trials = 20_000;
            let total: f64 = (0..trials)
                .map(|_| geometric_skip(&mut rng, ln_p) as f64)
                .sum();
            let mean = total / f64::from(trials);
            let expected = p / (1.0 - p);
            assert!(
                (mean - expected).abs() < 0.08 * expected,
                "p={p}: mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn partition_preserves_order_and_covers_input() {
        let input: Vec<u32> = (0..500).collect();
        for p in [0.0, 0.3, 0.9] {
            let sampler = FaultSampler::new(p);
            let mut rng = SmallRng::seed_from_u64(7);
            let (mut ok, mut fail) = (Vec::new(), Vec::new());
            sampler.partition_into(&mut rng, &input, &mut ok, &mut fail);
            assert_eq!(ok.len() + fail.len(), input.len(), "p={p}");
            assert!(ok.windows(2).all(|w| w[0] < w[1]));
            assert!(fail.windows(2).all(|w| w[0] < w[1]));
            let mut merged = [ok.clone(), fail.clone()].concat();
            merged.sort_unstable();
            assert_eq!(merged, input, "p={p}");
        }
    }

    #[test]
    fn successes_match_partition_successes_exactly() {
        // Same seed ⇒ the two entry points must agree on the success
        // set (they share one draw order by construction).
        let input: Vec<u32> = (0..300).map(|i| i * 3).collect();
        for p in [0.1, 0.5, 0.76, 0.95] {
            let sampler = FaultSampler::new(p);
            let mut a = SmallRng::seed_from_u64(11);
            let mut b = SmallRng::seed_from_u64(11);
            let (mut ok1, mut fail) = (Vec::new(), Vec::new());
            let mut ok2 = Vec::new();
            sampler.partition_into(&mut a, &input, &mut ok1, &mut fail);
            sampler.successes_into(&mut b, &input, &mut ok2);
            assert_eq!(ok1, ok2, "p={p}");
        }
    }

    #[test]
    fn success_rate_tracks_one_minus_p_across_the_switch() {
        let input: Vec<u32> = (0..2000).collect();
        for p in [0.74, 0.76] {
            let sampler = FaultSampler::new(p);
            let mut total = 0usize;
            let reps = 50;
            for seed in 0..reps {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut ok = Vec::new();
                sampler.successes_into(&mut rng, &input, &mut ok);
                total += ok.len();
            }
            let rate = total as f64 / (reps as usize * input.len()) as f64;
            assert!((rate - (1.0 - p)).abs() < 0.01, "p={p}: rate {rate}");
        }
    }

    #[test]
    fn first_success_is_monotone_in_p_per_seed() {
        for seed in 0..50u64 {
            let mut prev = 0usize;
            for p in [0.0, 0.2, 0.5, 0.8, 0.95] {
                let mut rng = SmallRng::seed_from_u64(seed);
                let t = FaultSampler::new(p).first_success(&mut rng);
                assert!(t >= prev, "seed={seed} p={p}: {t} < {prev}");
                prev = t;
            }
        }
    }

    #[test]
    fn first_success_mean_matches_geometric() {
        let sampler = FaultSampler::new(0.6);
        let mut rng = SmallRng::seed_from_u64(5);
        let trials = 20_000;
        let total: usize = (0..trials).map(|_| sampler.first_success(&mut rng)).sum();
        let mean = total as f64 / trials as f64;
        let expected = 0.6 / 0.4;
        assert!((mean - expected).abs() < 0.05 * expected, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sampler_rejects_p_one() {
        let _ = FaultSampler::new(1.0);
    }

    #[test]
    fn collision_counter_finds_sole_receivers() {
        let mut c = CollisionCounter::new(10);
        c.add(3);
        c.add(5);
        c.add(5); // collision
        c.add(7);
        let mut heard = Vec::new();
        c.drain_sole_receivers(|v| heard.push(v));
        assert_eq!(heard, vec![3, 7]);
        // Counter resets fully between rounds.
        c.add(5);
        let mut heard2 = Vec::new();
        c.drain_sole_receivers(|v| heard2.push(v));
        assert_eq!(heard2, vec![5]);
    }

    #[test]
    fn collision_counter_saturates_instead_of_wrapping() {
        let mut c = CollisionCounter::new(2);
        for _ in 0..300 {
            c.add(1);
        }
        let mut heard = Vec::new();
        c.drain_sole_receivers(|v| heard.push(v));
        assert!(heard.is_empty(), "255+ transmitters is still a collision");
    }
}
