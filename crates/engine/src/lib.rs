//! Synchronous network simulators with probabilistic transmission failures.
//!
//! This crate implements the two communication models of Pelc & Peleg
//! (PODC 2005 / TCS 2007) together with the paper's failure model:
//!
//! * **Message passing** ([`mp`]): in each step a node may send arbitrary,
//!   possibly different messages to all of its neighbors simultaneously,
//!   and receives every message sent to it.
//! * **Radio** ([`radio`]): a node transmits at most one message per step,
//!   delivered to all neighbors; a node *hears* a message iff it is silent
//!   and exactly one neighbor transmits. Collisions are indistinguishable
//!   from silence (no collision detection).
//!
//! **Failure model** ([`fault`]): in every step the *transmitter component*
//! of each node fails independently with a fixed probability `p < 1`
//! (one coin per node per step — a node's transmissions within a step all
//! share the same fate). The failure type decides what a failed
//! transmitter does:
//!
//! * *node-omission* — the node sends nothing that step;
//! * *limited malicious* — transmissions may be corrupted or dropped, but
//!   the node cannot speak out of turn (the weaker model under which
//!   Theorem 3.2 and the §2.2.2 datalink protocol operate);
//! * *malicious* — the transmitter behaves arbitrarily, as decided by an
//!   adaptive [`adversary`], including speaking out of turn (which, in the
//!   radio model, manufactures collisions).
//!
//! A failed node's *internal state is untouched* — only its outgoing
//! transmissions for that step are affected, exactly as in the paper.
//!
//! # Example: fault-free flooding in the message-passing model
//!
//! ```
//! use randcast_engine::mp::{MpNetwork, MpNode, Outgoing};
//! use randcast_engine::fault::FaultConfig;
//! use randcast_graph::{generators, NodeId};
//!
//! struct Flood {
//!     has: bool,
//! }
//! impl MpNode for Flood {
//!     type Msg = bool;
//!     fn send(&mut self, _round: usize) -> Outgoing<bool> {
//!         if self.has {
//!             Outgoing::Broadcast(true)
//!         } else {
//!             Outgoing::Silent
//!         }
//!     }
//!     fn recv(&mut self, _round: usize, _from: NodeId, _msg: bool) {
//!         self.has = true;
//!     }
//! }
//!
//! let g = generators::path(3);
//! let mut net = MpNetwork::new(&g, FaultConfig::fault_free(), 1, |v| Flood {
//!     has: v.index() == 0,
//! });
//! net.run(3);
//! assert!(net.nodes().all(|n| n.has));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod fault;
pub mod flood_fast;
pub mod kernel;
pub mod mp;
pub mod radio;
pub mod radio_fast;
pub mod simple_fast;
pub mod trace;

pub use fault::{FailureProb, FaultConfig, FaultKind};
