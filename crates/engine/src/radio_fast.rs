//! A specialized large-`n` fast path for the radio model: Decay (and
//! the all-informed-transmit baseline) under omission faults, without
//! per-node automata.
//!
//! The general [`RadioNetwork`](crate::radio::RadioNetwork) pays for
//! its generality every round: one `act` dispatch per node, an
//! intention vector of `n` enum values, a fault coin for all `n` nodes,
//! and a full reception scan of every listener's neighborhood.
//! Informed-set dynamics need none of that. An uninformed node hears
//! iff **exactly one** of its neighbors transmits, and the only nodes
//! whose transmissions an uninformed node can hear are informed nodes
//! with at least one uninformed neighbor — the *frontier*. [`FastRadio`]
//! therefore simulates only the frontier, on the shared
//! [`kernel`](crate::kernel) substrate:
//!
//! * the informed set is a word-level
//!   [`InformedSet`](crate::kernel::InformedSet) bitmask,
//! * adjacency is the flat `u32` CSR of a [`CsrGraph`] — the engine
//!   builds no adjacency of its own,
//! * per-round collision resolution is the
//!   [`CollisionCounter`](crate::kernel::CollisionCounter): saturating
//!   transmitter counts touched only at frontier neighborhoods (hear
//!   iff the count is exactly one), so a round costs `O(m_frontier)`,
//!   not `O(n + m)`,
//! * omission faults are sampled by the aggregate
//!   [`FaultSampler`](crate::kernel::FaultSampler) — one Bernoulli coin
//!   per participant, or a geometric skip between successful
//!   transmitters when `p > 0.75`,
//! * the run stops as soon as no informed node can ever inform anyone
//!   again (source component exhausted) or the broadcast completes.
//!
//! The [Decay schedule](FastRadioSchedule::Decay) draws its
//! participation coins from the **same per-node tapes** as the
//! trait-object protocol in `randcast_core::decay` ([`decay_tapes`] /
//! [`decay_coin`] are shared with it), so at `p = 0` — where fault
//! randomness vanishes — the two engines agree **exactly, per seed**,
//! not just in distribution. At `p > 0` only the fault coins come from
//! a different stream, so per-seed outcomes differ while every
//! distribution matches; `crates/core/tests/radio_equivalence.rs` pins
//! this with a 250-seed Welch-tolerance suite.
//!
//! Like [`flood_fast`](crate::flood_fast), the kernel is defined on
//! graphs disconnected from the source: it broadcasts over the source's
//! component and reports the informed *fraction* and the
//! almost-complete (`1 − 1/n`) time.
//!
//! Every entry point has a `*_model` sibling parametric in a
//! [`FaultModel`](crate::kernel::FaultModel). `Silent` models (i.i.d.
//! omission, throttled mixtures, worst-case placement) run the same
//! frontier machinery with the model supplying the per-site corruption
//! masks — the [`Omission`](crate::kernel::Omission) instance reads
//! exactly the coin words the hard-wired path read, so the plain entry
//! points stay byte-identical. Corrupted-*value* models (`Flip` /
//! `Lie`, the paper's limited-malicious transmitters) change what a
//! fault does: a corrupted transmitter still transmits — it collides
//! like any other — but the *message* it delivers is corrupted, a
//! sole receiver adopts whatever its one audible neighbor sent, and
//! wrong values propagate. The `*_model` outcome then tracks the
//! **correctly informed** nodes. Full-malicious radio (lie *or jam*)
//! still needs the adversary hooks of the general engine.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use randcast_graph::shard::{PassLoader, ShardError, ShardPlan, ShardStore, ShardView};
use randcast_graph::{CsrGraph, NodeId};
use randcast_stats::seed::{splitmix64, SeedSequence};

use crate::kernel::{
    range_passes, record_crossings, shard_passes, BatchTape, BatchedInformedSet, CollisionCounter,
    CorruptionKind, FaultModel, FaultSampler, FaultTapes, InformedSet, LaneCounter, LaneMask,
    Omission, ShardedCollisions, DECAY_STREAM, LANES,
};

/// The coin site of `(0-based round, node)`: both the fault coin and
/// the batched Decay participation coin of a node are per-round, so the
/// pair packs losslessly into one `u64` site.
fn radio_site(r0: usize, v: u32) -> u64 {
    (r0 as u64) << 32 | u64::from(v)
}

/// Seed-sequence label under which the Decay protocol derives its
/// per-node coin tapes (shared between the trait-object protocol and
/// the fast kernel so the two stay in lockstep).
pub const DECAY_TAPE_LABEL: u64 = 0xDECA;

/// The per-node tape sequence for a Decay execution rooted at `seed`:
/// node `v`'s tape is `decay_tapes(seed).nth_seed(v)`.
#[must_use]
pub fn decay_tapes(seed: u64) -> SeedSequence {
    SeedSequence::new(seed).child(DECAY_TAPE_LABEL)
}

/// One fair Decay coin for `(tape, epoch, round-in-epoch)`: a node that
/// was active in round `j` of an epoch stays active for round `j + 1`
/// iff this coin is heads. A pure function, so both engines can
/// evaluate it in any order and still agree.
#[must_use]
pub fn decay_coin(tape: u64, epoch: usize, j: usize) -> bool {
    splitmix64(
        tape ^ (epoch as u64).wrapping_mul(0xA24B_AED4_963E_E407)
            ^ (j as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25),
    ) & 1
        == 1
}

/// Which transmission schedule the fast radio kernel executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FastRadioSchedule {
    /// Bar-Yehuda–Goldreich–Itai *Decay*: epochs of `epoch_len` rounds;
    /// every informed node starts each epoch transmitting and halves
    /// its participation probability each round (transmit in round `j`
    /// with probability `2^{−j}`). Nodes informed mid-epoch join at the
    /// next epoch boundary.
    Decay {
        /// Rounds per epoch (the classical choice is `⌈log₂ n⌉ + 1`).
        epoch_len: usize,
    },
    /// The degenerate baseline: every informed node transmits every
    /// round (newly informed nodes join the next round). On any node
    /// with two or more informed neighbors this collides until omission
    /// faults happen to silence all but one transmitter — the
    /// contention pathology Decay exists to break.
    AllInformed,
}

/// A compiled fast-path radio plan: flat CSR adjacency plus a schedule
/// and horizon. The adjacency arrays come straight from the
/// [`CsrGraph`] substrate.
#[derive(Clone, Debug)]
pub struct FastRadio {
    /// `neighbors[offsets[v]..offsets[v+1]]` are `v`'s neighbors.
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    source: u32,
    horizon: usize,
    n: usize,
    schedule: FastRadioSchedule,
}

impl FastRadio {
    /// Compiles a plan broadcasting from `source` for at most `horizon`
    /// rounds under `schedule`. A `horizon` of 0 is allowed (the run
    /// reports only the source informed); a graph disconnected from
    /// `source` is allowed (the broadcast covers the source's
    /// component). Takes the graph by value: the plan *is* the CSR
    /// arrays, moved in without a copy (clone at the call site to keep
    /// the graph).
    ///
    /// # Panics
    ///
    /// Panics if the schedule is [`FastRadioSchedule::Decay`] with
    /// `epoch_len == 0`.
    #[must_use]
    pub fn new(csr: CsrGraph, source: NodeId, horizon: usize, schedule: FastRadioSchedule) -> Self {
        if let FastRadioSchedule::Decay { epoch_len } = schedule {
            assert!(epoch_len > 0, "decay epochs need at least one round");
        }
        let n = csr.node_count();
        let (offsets, neighbors) = csr.into_raw_parts();
        FastRadio {
            offsets,
            neighbors,
            source: u32::from(source),
            horizon,
            n,
            schedule,
        }
    }

    /// The horizon (maximum number of rounds executed).
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The schedule this plan executes.
    #[must_use]
    pub fn schedule(&self) -> FastRadioSchedule {
        self.schedule
    }

    fn neighbors_of(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    fn has_uninformed_neighbor(&self, v: usize, informed: &InformedSet) -> bool {
        self.neighbors_of(v).iter().any(|&t| !informed.contains(t))
    }

    /// Executes one seeded broadcast with per-(node, round) transmitter
    /// omission probability `p`, running until the horizon or until no
    /// further round can change anything.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn run(&self, p: f64, seed: u64) -> FastRadioOutcome {
        let sampler = FaultSampler::new(p);
        let n = self.n;
        let mut rng = SmallRng::seed_from_u64(seed);
        let tapes = decay_tapes(seed);
        let mut informed = InformedSet::new(n);
        informed.insert(self.source);
        let mut informed_by_round = Vec::with_capacity(self.horizon.min(1024) + 1);
        informed_by_round.push(1);
        let mut completion_round = (n == 1).then_some(0);

        // Informed nodes that may still have uninformed neighbors;
        // re-filtered at every epoch boundary, and the only nodes the
        // kernel ever simulates (an informed node all of whose
        // neighbors are informed can neither inform nor collide at an
        // uninformed listener).
        let mut participants: Vec<u32> = vec![self.source];
        let mut active: Vec<u32> = Vec::new();
        let mut transmitters: Vec<u32> = Vec::new();
        let mut counter = CollisionCounter::new(n);

        let (decay, epoch_len) = match self.schedule {
            FastRadioSchedule::Decay { epoch_len } => (true, epoch_len),
            // Every round is its own epoch: everyone re-activates.
            FastRadioSchedule::AllInformed => (false, 1),
        };

        for round in 1..=self.horizon {
            if completion_round.is_some() {
                break; // everyone informed: nothing can change
            }
            // `r0` is the trait-object engine's 0-based round index.
            let r0 = round - 1;
            let j = r0 % epoch_len;
            if j == 0 {
                participants.retain(|&u| self.has_uninformed_neighbor(u as usize, &informed));
                if participants.is_empty() {
                    break; // the source component is exhausted
                }
                active.clear();
                active.extend_from_slice(&participants);
            }

            // Omission faults: each active node's transmitter works
            // with probability 1 − p this round.
            transmitters.clear();
            sampler.successes_into(&mut rng, &active, &mut transmitters);

            // Collision resolution: an uninformed listener hears iff
            // exactly one neighbor transmits.
            for &u in &transmitters {
                for &v in self.neighbors_of(u as usize) {
                    if !informed.contains(v) {
                        counter.add(v);
                    }
                }
            }
            counter.drain_sole_receivers(|v| {
                informed.insert(v);
                // Joins the transmitters at the next epoch start.
                participants.push(v);
            });

            informed_by_round.push(informed.count());
            if informed.count() == n {
                completion_round = Some(round);
            }

            // Decay: a node active in round `j` stays active for round
            // `j + 1` iff its tape coin is heads (faults never touch
            // the coin stream — a failed transmitter still decays).
            if decay && j + 1 < epoch_len {
                let epoch = r0 / epoch_len;
                active.retain(|&u| decay_coin(tapes.nth_seed(u64::from(u)), epoch, j));
            }
        }

        FastRadioOutcome {
            n,
            horizon: self.horizon,
            completion_round,
            informed_by_round,
            informed,
        }
    }

    /// Scalar replay of lane `lane` of batched block `block_seed`: the
    /// same frontier algorithm as [`run`](Self::run), but every fault
    /// coin is bit `lane` of the site-addressed batch tape (site =
    /// per-(round, node)) and every Decay participation coin is bit
    /// `lane` of the [`DECAY_STREAM`] tape at the same site. Coins are
    /// i.i.d. with the same marginals as [`run`](Self::run), so the
    /// sampled process is statistically identical; the site addressing
    /// is what lets [`run_batch`](Self::run_batch) reproduce this
    /// outcome *exactly*, lane for lane — see
    /// [`FastRadioBatch::lane_outcome`].
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or `lane ≥ 64`.
    #[must_use]
    pub fn run_lane(&self, p: f64, block_seed: u64, lane: u32) -> FastRadioOutcome {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        assert!((lane as usize) < LANES, "lane out of range");
        self.run_lane_silent(
            &Omission::new(p),
            &FaultTapes::new(block_seed),
            &BatchTape::new(block_seed, DECAY_STREAM),
            lane,
        )
    }

    /// The frontier replay of [`run_lane`](Self::run_lane) generalized
    /// over any `Silent` [`FaultModel`]: a corrupted transmission is
    /// silenced, everything else is the omission algorithm. The
    /// [`Omission`] instance reads exactly the coin words the
    /// hard-wired path read before the refactor, so the omission entry
    /// points stay byte-identical.
    fn run_lane_silent<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        decay_tape: &BatchTape,
        lane: u32,
    ) -> FastRadioOutcome {
        let n = self.n;
        let mut informed = InformedSet::new(n);
        informed.insert(self.source);
        let mut informed_by_round = Vec::with_capacity(self.horizon.min(1024) + 1);
        informed_by_round.push(1);
        let mut completion_round = (n == 1).then_some(0);

        let mut participants: Vec<u32> = vec![self.source];
        let mut active: Vec<u32> = Vec::new();
        let mut counter = CollisionCounter::new(n);

        let (decay, epoch_len) = match self.schedule {
            FastRadioSchedule::Decay { epoch_len } => (true, epoch_len),
            FastRadioSchedule::AllInformed => (false, 1),
        };

        for round in 1..=self.horizon {
            if completion_round.is_some() {
                break;
            }
            let r0 = round - 1;
            let j = r0 % epoch_len;
            if j == 0 {
                participants.retain(|&u| self.has_uninformed_neighbor(u as usize, &informed));
                if participants.is_empty() {
                    break;
                }
                active.clear();
                active.extend_from_slice(&participants);
            }

            for &u in &active {
                // The coin is an omission: `true` silences `u`.
                if model.corrupt_lane(tapes, radio_site(r0, u), u, lane) {
                    continue;
                }
                for &v in self.neighbors_of(u as usize) {
                    if !informed.contains(v) {
                        counter.add(v);
                    }
                }
            }
            counter.drain_sole_receivers(|v| {
                informed.insert(v);
                participants.push(v);
            });

            informed_by_round.push(informed.count());
            if informed.count() == n {
                completion_round = Some(round);
            }

            if decay && j + 1 < epoch_len {
                active.retain(|&u| decay_tape.fair_lane(radio_site(r0, u), lane));
            }
        }

        FastRadioOutcome {
            n,
            horizon: self.horizon,
            completion_round,
            informed_by_round,
            informed,
        }
    }

    /// Runs all 64 trial lanes of block `block_seed` at once: the
    /// informed set is a lane word per node, fault coins are bit-sliced
    /// Bernoulli masks, Decay participation coins are raw fair-coin
    /// tape words, and collision resolution is a pair of saturating
    /// lane masks (`≥ 1` / `≥ 2` transmitting neighbors) per touched
    /// listener. Lane `k` of the result is byte-identical to
    /// [`run_lane`](Self::run_lane)`(p, block_seed, k)` — coins are
    /// site-addressed pure functions of the block seed, so the batched
    /// evolution reads exactly the bits the scalar replay reads.
    ///
    /// A lane's replay stops executing rounds once it completes or once
    /// an epoch boundary finds it without participants; the batch keeps
    /// looping while *any* lane is live and records each lane's stop
    /// round so per-lane growth curves cut off exactly where the scalar
    /// replay's do.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn run_batch(&self, p: f64, block_seed: u64) -> FastRadioBatch {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        self.run_batch_silent(
            &Omission::new(p),
            &FaultTapes::new(block_seed),
            &BatchTape::new(block_seed, DECAY_STREAM),
        )
    }

    /// [`run_batch`](Self::run_batch) generalized over any `Silent`
    /// [`FaultModel`] (see [`run_lane_silent`](Self::run_lane_silent)
    /// for the byte-identity argument).
    fn run_batch_silent<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        tapes: &FaultTapes,
        decay_tape: &BatchTape,
    ) -> FastRadioBatch {
        let n = self.n;
        let mut informed = BatchedInformedSet::new(n);
        informed.insert_masked(self.source, !0);
        let almost_target = n.saturating_sub(1).max(1) as u64;

        let mut completion_round: Vec<Option<usize>> = vec![None; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        let mut completed: LaneMask = 0;
        let mut almost_done: LaneMask = 0;
        if n == 1 {
            completed = !0;
            completion_round.fill(Some(0));
        }
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        // Per-round snapshots of the count planes, in one flat arena.
        let plane_width = (usize::BITS - n.leading_zeros()) as usize;
        let mut count_arena: Vec<u64> = Vec::new();
        let mut executed = 0usize;

        // Lanes whose replay broke at an epoch boundary with no
        // participants left, and the number of rounds each had executed.
        let mut exhausted: LaneMask = 0;
        let mut exhaust_end = vec![0usize; LANES];

        // Union participant list: nodes with a nonzero per-lane
        // participation mask in some lane. `act` is the per-node lane
        // mask of *currently transmitting* participants — rebuilt at
        // every epoch boundary, thinned by Decay coins within an epoch.
        // Nodes informed mid-epoch join the list with an empty mask and
        // pick up their lanes at the next boundary, exactly as the
        // scalar kernel's `participants` / `active` split.
        let mut plist: Vec<u32> = vec![self.source];
        let mut in_plist = vec![false; n];
        in_plist[self.source as usize] = true;
        let mut act: Vec<LaneMask> = vec![0; n];

        // Collision accumulators per listener: lanes with ≥ 1 and ≥ 2
        // transmitting neighbors this round, reset via the touched list.
        let mut once: Vec<LaneMask> = vec![0; n];
        let mut twice: Vec<LaneMask> = vec![0; n];
        let mut touched: Vec<u32> = Vec::new();

        let (decay, epoch_len) = match self.schedule {
            FastRadioSchedule::Decay { epoch_len } => (true, epoch_len),
            FastRadioSchedule::AllInformed => (false, 1),
        };

        for round in 1..=self.horizon {
            let live = !(completed | exhausted);
            if live == 0 {
                break;
            }
            let r0 = round - 1;
            let j = r0 % epoch_len;
            if j == 0 {
                let mut any: LaneMask = 0;
                plist.retain(|&v| {
                    let vi = v as usize;
                    let inf_v = informed.lanes(v);
                    let mut un: LaneMask = 0;
                    for &t in self.neighbors_of(vi) {
                        un |= !informed.lanes(t);
                        // Once every lane `v` knows the message in has
                        // an uninformed neighbor, more neighbors cannot
                        // widen the participation mask.
                        if un & inf_v == inf_v {
                            break;
                        }
                    }
                    let m = inf_v & un;
                    act[vi] = m;
                    any |= m;
                    if m == 0 {
                        in_plist[vi] = false;
                    }
                    m != 0
                });
                // Lanes with no participants anywhere break *before*
                // executing this round, exactly like the scalar replay.
                let newly_exhausted = live & !any;
                if newly_exhausted != 0 {
                    exhausted |= newly_exhausted;
                    let mut bits = newly_exhausted;
                    while bits != 0 {
                        exhaust_end[bits.trailing_zeros() as usize] = executed;
                        bits &= bits - 1;
                    }
                    if live & any == 0 {
                        break;
                    }
                }
            }
            executed += 1;

            for &v in &plist {
                let a = act[v as usize];
                if a == 0 {
                    continue;
                }
                // Coins are site-addressed pure functions, so skipping
                // the draw for a transmission no listener can use
                // leaves every other lane read untouched. `useful`
                // restricts the draw to lanes where some neighbor is
                // still uninformed; the excluded lanes would contribute
                // `need == 0` at every listener below.
                let mut un_v: LaneMask = 0;
                for &t in self.neighbors_of(v as usize) {
                    un_v |= !informed.lanes(t);
                    if un_v & a == a {
                        break;
                    }
                }
                let useful = a & un_v;
                if useful == 0 {
                    continue;
                }
                let tx = useful & !model.corrupt_mask(tapes, radio_site(r0, v), v, useful);
                if tx == 0 {
                    continue;
                }
                for &t in self.neighbors_of(v as usize) {
                    let ti = t as usize;
                    // Restrict collision tracking to the lanes where `t`
                    // is still uninformed — the scalar replay's
                    // `!informed.contains(v)` guard, lane-sliced. Lanes
                    // where `t` already knows the message can neither
                    // hear nor collide usefully, and the informed words
                    // are frozen until the drain, so dropping them here
                    // leaves `hear` identical on every lane that counts.
                    let need = tx & !informed.lanes(t);
                    if need == 0 {
                        continue;
                    }
                    if once[ti] | twice[ti] == 0 {
                        touched.push(t);
                    }
                    twice[ti] |= once[ti] & need;
                    once[ti] |= need;
                }
            }

            let mut changed = false;
            for &t in &touched {
                let ti = t as usize;
                let hear = once[ti] & !twice[ti];
                once[ti] = 0;
                twice[ti] = 0;
                if hear == 0 {
                    continue;
                }
                let newly = informed.insert_masked(t, hear);
                if newly != 0 {
                    changed = true;
                    if !in_plist[ti] {
                        in_plist[ti] = true;
                        act[ti] = 0;
                        plist.push(t);
                    }
                }
            }
            touched.clear();

            count_arena.extend_from_slice(informed.counts().planes());
            count_arena.resize(executed * plane_width, 0);

            if changed {
                let comp = informed.counts().eq_mask(n as u64) & !completed;
                record_crossings(comp, round, &mut completion_round);
                completed |= comp;
                if almost_done != !0 {
                    let almost = informed.counts().ge_mask(almost_target) & !almost_done;
                    record_crossings(almost, round, &mut almost_round);
                    almost_done |= almost;
                }
            }

            if decay && j + 1 < epoch_len {
                for &v in &plist {
                    let vi = v as usize;
                    if act[vi] != 0 {
                        act[vi] &= decay_tape.fair_mask(radio_site(r0, v));
                    }
                }
            }
        }

        FastRadioBatch {
            n,
            horizon: self.horizon,
            informed,
            completion_round,
            almost_round,
            exhausted,
            exhaust_end,
            plane_width,
            count_arena,
            executed,
        }
    }

    /// Scalar lane replay executed shard-at-a-time: the algorithm of
    /// [`run_lane`](Self::run_lane) with the participant and active
    /// lists kept per shard of `plan`, so the epoch-boundary refilter,
    /// the transmit pass, and the Decay thinning each touch one shard's
    /// CSR rows at a time through a [`ShardView`]. Collision counts
    /// accumulate in the *global* [`CollisionCounter`] across all of a
    /// round's shard passes before the sole-receiver drain — exactly
    /// one drain per round, as in the monolithic pass — and the
    /// saturating per-listener counts are order-independent for a fixed
    /// transmitter set, so the outcome is **bit-identical** to
    /// [`run_lane`](Self::run_lane) for every plan.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`, `lane ≥ 64`, or the plan covers a
    /// different node count.
    #[must_use]
    pub fn run_lane_sharded(
        &self,
        plan: &ShardPlan,
        p: f64,
        block_seed: u64,
        lane: u32,
    ) -> FastRadioOutcome {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        assert!((lane as usize) < LANES, "lane out of range");
        self.run_lane_sharded_silent(
            plan,
            &Omission::new(p),
            &FaultTapes::new(block_seed),
            &BatchTape::new(block_seed, DECAY_STREAM),
            lane,
        )
    }

    /// [`run_lane_sharded`](Self::run_lane_sharded) generalized over
    /// any `Silent` [`FaultModel`] (see
    /// [`run_lane_silent`](Self::run_lane_silent) for the
    /// byte-identity argument).
    fn run_lane_sharded_silent<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        tapes: &FaultTapes,
        decay_tape: &BatchTape,
        lane: u32,
    ) -> FastRadioOutcome {
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        let n = self.n;
        let k = plan.shard_count();
        let mut informed = InformedSet::new(n);
        informed.insert(self.source);
        let mut informed_by_round = Vec::with_capacity(self.horizon.min(1024) + 1);
        informed_by_round.push(1);
        let mut completion_round = (n == 1).then_some(0);

        let mut participants: Vec<Vec<u32>> = vec![Vec::new(); k];
        participants[plan.shard_of(self.source)].push(self.source);
        let mut active: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut counter = CollisionCounter::new(n);

        let (decay, epoch_len) = match self.schedule {
            FastRadioSchedule::Decay { epoch_len } => (true, epoch_len),
            FastRadioSchedule::AllInformed => (false, 1),
        };

        for round in 1..=self.horizon {
            if completion_round.is_some() {
                break;
            }
            let r0 = round - 1;
            let j = r0 % epoch_len;
            if j == 0 {
                let mut any = false;
                for (s, (parts, act_list)) in
                    participants.iter_mut().zip(active.iter_mut()).enumerate()
                {
                    act_list.clear();
                    if parts.is_empty() {
                        continue;
                    }
                    let (start, end) = plan.range(s);
                    let view = ShardView::over(&self.offsets, &self.neighbors, start, end);
                    parts.retain(|&u| view.targets_of(u).iter().any(|&t| !informed.contains(t)));
                    act_list.extend_from_slice(parts);
                    any |= !parts.is_empty();
                }
                if !any {
                    break;
                }
            }

            for (s, act_list) in active.iter().enumerate() {
                if act_list.is_empty() {
                    continue;
                }
                let (start, end) = plan.range(s);
                let view = ShardView::over(&self.offsets, &self.neighbors, start, end);
                for &u in act_list {
                    if model.corrupt_lane(tapes, radio_site(r0, u), u, lane) {
                        continue;
                    }
                    for &v in view.targets_of(u) {
                        if !informed.contains(v) {
                            counter.add(v);
                        }
                    }
                }
            }
            counter.drain_sole_receivers(|v| {
                informed.insert(v);
                participants[plan.shard_of(v)].push(v);
            });

            informed_by_round.push(informed.count());
            if informed.count() == n {
                completion_round = Some(round);
            }

            if decay && j + 1 < epoch_len {
                for list in &mut active {
                    list.retain(|&u| decay_tape.fair_lane(radio_site(r0, u), lane));
                }
            }
        }

        FastRadioOutcome {
            n,
            horizon: self.horizon,
            completion_round,
            informed_by_round,
            informed,
        }
    }

    /// The 64-lane batch executed shard-at-a-time; **bit-identical** to
    /// [`run_batch`](Self::run_batch) for every plan. The union
    /// participant list is kept per shard; per-node lane state (`act`,
    /// informed words, collision accumulators) stays global. Each round
    /// runs the epoch refilter and the transmit pass one shard at a
    /// time, accumulating the `≥ 1` / `≥ 2` collision masks across all
    /// shards before the single sole-receiver drain, and the
    /// lane-exhaustion bookkeeping fires only after *every* shard's
    /// refilter has contributed to the round's participation union —
    /// the same points in the round where the monolithic batch reads
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or the plan covers a different node
    /// count.
    #[must_use]
    pub fn run_batch_sharded(&self, plan: &ShardPlan, p: f64, block_seed: u64) -> FastRadioBatch {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        self.run_batch_sharded_silent(
            plan,
            &Omission::new(p),
            &FaultTapes::new(block_seed),
            &BatchTape::new(block_seed, DECAY_STREAM),
        )
    }

    /// [`run_batch_sharded`](Self::run_batch_sharded) generalized over
    /// any `Silent` [`FaultModel`] (see
    /// [`run_lane_silent`](Self::run_lane_silent) for the
    /// byte-identity argument).
    fn run_batch_sharded_silent<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        tapes: &FaultTapes,
        decay_tape: &BatchTape,
    ) -> FastRadioBatch {
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        let n = self.n;
        let k = plan.shard_count();
        let mut informed = BatchedInformedSet::new(n);
        informed.insert_masked(self.source, !0);
        let almost_target = n.saturating_sub(1).max(1) as u64;

        let mut completion_round: Vec<Option<usize>> = vec![None; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        let mut completed: LaneMask = 0;
        let mut almost_done: LaneMask = 0;
        if n == 1 {
            completed = !0;
            completion_round.fill(Some(0));
        }
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        let plane_width = (usize::BITS - n.leading_zeros()) as usize;
        let mut count_arena: Vec<u64> = Vec::new();
        let mut executed = 0usize;

        let mut exhausted: LaneMask = 0;
        let mut exhaust_end = vec![0usize; LANES];

        let mut plist: Vec<Vec<u32>> = vec![Vec::new(); k];
        plist[plan.shard_of(self.source)].push(self.source);
        let mut in_plist = vec![false; n];
        in_plist[self.source as usize] = true;
        let mut act: Vec<LaneMask> = vec![0; n];

        let mut once: Vec<LaneMask> = vec![0; n];
        let mut twice: Vec<LaneMask> = vec![0; n];
        let mut touched: Vec<u32> = Vec::new();

        let (decay, epoch_len) = match self.schedule {
            FastRadioSchedule::Decay { epoch_len } => (true, epoch_len),
            FastRadioSchedule::AllInformed => (false, 1),
        };

        for round in 1..=self.horizon {
            let live = !(completed | exhausted);
            if live == 0 {
                break;
            }
            let r0 = round - 1;
            let j = r0 % epoch_len;
            if j == 0 {
                let mut any: LaneMask = 0;
                for (s, list) in plist.iter_mut().enumerate() {
                    if list.is_empty() {
                        continue;
                    }
                    let (start, end) = plan.range(s);
                    let view = ShardView::over(&self.offsets, &self.neighbors, start, end);
                    list.retain(|&v| {
                        let vi = v as usize;
                        let inf_v = informed.lanes(v);
                        let mut un: LaneMask = 0;
                        for &t in view.targets_of(v) {
                            un |= !informed.lanes(t);
                            if un & inf_v == inf_v {
                                break;
                            }
                        }
                        let m = inf_v & un;
                        act[vi] = m;
                        any |= m;
                        if m == 0 {
                            in_plist[vi] = false;
                        }
                        m != 0
                    });
                }
                // Exhaustion is a whole-round property: read it only
                // after every shard's refilter has been folded in.
                let newly_exhausted = live & !any;
                if newly_exhausted != 0 {
                    exhausted |= newly_exhausted;
                    let mut bits = newly_exhausted;
                    while bits != 0 {
                        exhaust_end[bits.trailing_zeros() as usize] = executed;
                        bits &= bits - 1;
                    }
                    if live & any == 0 {
                        break;
                    }
                }
            }
            executed += 1;

            for (s, list) in plist.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let (start, end) = plan.range(s);
                let view = ShardView::over(&self.offsets, &self.neighbors, start, end);
                for &v in list {
                    let a = act[v as usize];
                    if a == 0 {
                        continue;
                    }
                    let mut un_v: LaneMask = 0;
                    for &t in view.targets_of(v) {
                        un_v |= !informed.lanes(t);
                        if un_v & a == a {
                            break;
                        }
                    }
                    let useful = a & un_v;
                    if useful == 0 {
                        continue;
                    }
                    let tx = useful & !model.corrupt_mask(tapes, radio_site(r0, v), v, useful);
                    if tx == 0 {
                        continue;
                    }
                    for &t in view.targets_of(v) {
                        let ti = t as usize;
                        let need = tx & !informed.lanes(t);
                        if need == 0 {
                            continue;
                        }
                        if once[ti] | twice[ti] == 0 {
                            touched.push(t);
                        }
                        twice[ti] |= once[ti] & need;
                        once[ti] |= need;
                    }
                }
            }

            let mut changed = false;
            for &t in &touched {
                let ti = t as usize;
                let hear = once[ti] & !twice[ti];
                once[ti] = 0;
                twice[ti] = 0;
                if hear == 0 {
                    continue;
                }
                let newly = informed.insert_masked(t, hear);
                if newly != 0 {
                    changed = true;
                    if !in_plist[ti] {
                        in_plist[ti] = true;
                        act[ti] = 0;
                        plist[plan.shard_of(t)].push(t);
                    }
                }
            }
            touched.clear();

            count_arena.extend_from_slice(informed.counts().planes());
            count_arena.resize(executed * plane_width, 0);

            if changed {
                let comp = informed.counts().eq_mask(n as u64) & !completed;
                record_crossings(comp, round, &mut completion_round);
                completed |= comp;
                if almost_done != !0 {
                    let almost = informed.counts().ge_mask(almost_target) & !almost_done;
                    record_crossings(almost, round, &mut almost_round);
                    almost_done |= almost;
                }
            }

            if decay && j + 1 < epoch_len {
                for list in &plist {
                    for &v in list {
                        let vi = v as usize;
                        if act[vi] != 0 {
                            act[vi] &= decay_tape.fair_mask(radio_site(r0, v));
                        }
                    }
                }
            }
        }

        FastRadioBatch {
            n,
            horizon: self.horizon,
            informed,
            completion_round,
            almost_round,
            exhausted,
            exhaust_end,
            plane_width,
            count_arena,
            executed,
        }
    }

    /// [`run_batch_sharded`](Self::run_batch_sharded) with the round's
    /// independent shard passes fanned across up to `threads` scoped
    /// workers; **byte-identical** to the single-threaded sharded batch
    /// (and hence to the monolithic batch) for every `threads × plan`
    /// combination. Both the epoch refilter and the transmit pass read
    /// only state frozen for the pass (the informed lane masks are not
    /// written until the single sole-receiver drain), so workers return
    /// their writes as data and the sequential ascending-shard merge
    /// replays the exact single-threaded write sequence — including the
    /// `touched` list order the drain visits (see DESIGN.md, "Parallel
    /// shard passes").
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or the plan covers a different node
    /// count.
    #[must_use]
    pub fn run_batch_sharded_threads(
        &self,
        plan: &ShardPlan,
        p: f64,
        block_seed: u64,
        threads: usize,
    ) -> FastRadioBatch {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        let model = Omission::new(p);
        self.run_batch_sharded_model_threads(plan, &model, block_seed, threads)
    }

    /// [`run_batch_sharded_model`](Self::run_batch_sharded_model) with
    /// thread-parallel shard passes; byte-identical to it for every
    /// thread count. Only the silent pass parallelizes — the
    /// corrupted-value pass carries per-node heard values through a
    /// sequential epoch walk and delegates unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different node count.
    #[must_use]
    pub fn run_batch_sharded_model_threads<M: FaultModel + Sync + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        block_seed: u64,
        threads: usize,
    ) -> FastRadioBatch {
        let tapes = FaultTapes::new(block_seed);
        let decay_tape = BatchTape::new(block_seed, DECAY_STREAM);
        match model.kind() {
            CorruptionKind::Silent => {
                if threads <= 1 || plan.shard_count() <= 1 {
                    self.run_batch_sharded_silent(plan, model, &tapes, &decay_tape)
                } else {
                    self.run_batch_sharded_silent_threads(plan, model, &tapes, &decay_tape, threads)
                }
            }
            _ => self.run_batch_values_sharded(plan, model, &tapes, &decay_tape),
        }
    }

    /// Thread-parallel evolution of
    /// [`run_batch_sharded_silent`](Self::run_batch_sharded_silent).
    /// Refilter workers return each shard's surviving participants with
    /// their fresh activity masks plus the shard's participation union;
    /// transmit workers return `(target, need)` delivery events
    /// computed against the frozen informed masks — exactly the masks
    /// the single-threaded pass reads, since `informed` is only written
    /// in the drain. The ascending-shard merge then accumulates the
    /// `≥ 1`/`≥ 2` collision words and the `touched` order identically
    /// to the single-threaded pass, and the drain, crossing
    /// bookkeeping, and Decay thinning run sequentially unchanged.
    fn run_batch_sharded_silent_threads<M: FaultModel + Sync + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        tapes: &FaultTapes,
        decay_tape: &BatchTape,
        threads: usize,
    ) -> FastRadioBatch {
        struct RefilterPass {
            retained: Vec<(u32, LaneMask)>,
            dropped: Vec<u32>,
            any: LaneMask,
        }

        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        let n = self.n;
        let k = plan.shard_count();
        let mut informed = BatchedInformedSet::new(n);
        informed.insert_masked(self.source, !0);
        let almost_target = n.saturating_sub(1).max(1) as u64;

        let mut completion_round: Vec<Option<usize>> = vec![None; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        let mut completed: LaneMask = 0;
        let mut almost_done: LaneMask = 0;
        if n == 1 {
            completed = !0;
            completion_round.fill(Some(0));
        }
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        let plane_width = (usize::BITS - n.leading_zeros()) as usize;
        let mut count_arena: Vec<u64> = Vec::new();
        let mut executed = 0usize;

        let mut exhausted: LaneMask = 0;
        let mut exhaust_end = vec![0usize; LANES];

        let mut plist: Vec<Vec<u32>> = vec![Vec::new(); k];
        plist[plan.shard_of(self.source)].push(self.source);
        let mut in_plist = vec![false; n];
        in_plist[self.source as usize] = true;
        let mut act: Vec<LaneMask> = vec![0; n];

        let mut once: Vec<LaneMask> = vec![0; n];
        let mut twice: Vec<LaneMask> = vec![0; n];

        let (decay, epoch_len) = match self.schedule {
            FastRadioSchedule::Decay { epoch_len } => (true, epoch_len),
            FastRadioSchedule::AllInformed => (false, 1),
        };

        for round in 1..=self.horizon {
            let live = !(completed | exhausted);
            if live == 0 {
                break;
            }
            let r0 = round - 1;
            let j = r0 % epoch_len;
            if j == 0 {
                // Parallel refilter: workers read the frozen informed
                // masks and their own shard's frozen participant list.
                let passes = {
                    let plist = &plist;
                    let informed = &informed;
                    shard_passes(k, threads, |s| {
                        let mut pass = RefilterPass {
                            retained: Vec::new(),
                            dropped: Vec::new(),
                            any: 0,
                        };
                        if plist[s].is_empty() {
                            return pass;
                        }
                        let (start, end) = plan.range(s);
                        let view = ShardView::over(&self.offsets, &self.neighbors, start, end);
                        for &v in &plist[s] {
                            let inf_v = informed.lanes(v);
                            let mut un: LaneMask = 0;
                            for &t in view.targets_of(v) {
                                un |= !informed.lanes(t);
                                if un & inf_v == inf_v {
                                    break;
                                }
                            }
                            let m = inf_v & un;
                            pass.any |= m;
                            if m == 0 {
                                pass.dropped.push(v);
                            } else {
                                pass.retained.push((v, m));
                            }
                        }
                        pass
                    })
                };
                let mut any: LaneMask = 0;
                for (s, pass) in passes.into_iter().enumerate() {
                    any |= pass.any;
                    if pass.retained.is_empty() && pass.dropped.is_empty() {
                        continue;
                    }
                    let list = &mut plist[s];
                    list.clear();
                    for (v, m) in pass.retained {
                        act[v as usize] = m;
                        list.push(v);
                    }
                    for v in pass.dropped {
                        act[v as usize] = 0;
                        in_plist[v as usize] = false;
                    }
                }
                let newly_exhausted = live & !any;
                if newly_exhausted != 0 {
                    exhausted |= newly_exhausted;
                    let mut bits = newly_exhausted;
                    while bits != 0 {
                        exhaust_end[bits.trailing_zeros() as usize] = executed;
                        bits &= bits - 1;
                    }
                    if live & any == 0 {
                        break;
                    }
                }
            }
            executed += 1;

            // Parallel transmit: `informed` is frozen until the drain,
            // so the per-target `need` masks workers compute are the
            // very masks the single-threaded pass reads. Events come
            // back bucketed by the *listener's* shard so the merge can
            // fan out too.
            let events = {
                let plist = &plist;
                let act = &act;
                let informed = &informed;
                shard_passes(k, threads, |s| {
                    let mut events: Vec<Vec<(u32, LaneMask)>> = vec![Vec::new(); k];
                    if plist[s].is_empty() {
                        return events;
                    }
                    let (start, end) = plan.range(s);
                    let view = ShardView::over(&self.offsets, &self.neighbors, start, end);
                    for &v in &plist[s] {
                        let a = act[v as usize];
                        if a == 0 {
                            continue;
                        }
                        let mut un_v: LaneMask = 0;
                        for &t in view.targets_of(v) {
                            un_v |= !informed.lanes(t);
                            if un_v & a == a {
                                break;
                            }
                        }
                        let useful = a & un_v;
                        if useful == 0 {
                            continue;
                        }
                        let tx = useful & !model.corrupt_mask(tapes, radio_site(r0, v), v, useful);
                        if tx == 0 {
                            continue;
                        }
                        for &t in view.targets_of(v) {
                            let need = tx & !informed.lanes(t);
                            if need != 0 {
                                events[plan.shard_of(t)].push((t, need));
                            }
                        }
                    }
                    events
                })
            };

            // Parallel merge + drain: each listener shard's event
            // stream (transmit shards ascending, emission order within
            // each) is the restriction of the sequential merge order to
            // that shard, so folding it into that shard's slice of the
            // once/twice planes replays the single-threaded first-touch
            // order exactly. Workers emit `(t, hear)` in first-touch
            // order and reset their slices; only the `informed` insert
            // stays sequential.
            let mut regrouped: Vec<Vec<Vec<(u32, LaneMask)>>> = vec![Vec::with_capacity(k); k];
            for per_tx in events {
                for (l, bucket) in per_tx.into_iter().enumerate() {
                    regrouped[l].push(bucket);
                }
            }
            // One listener shard's drain state: its event buckets (one
            // per transmit shard, ascending) plus its slices of the
            // once/twice hearing planes.
            type ListenerDrain<'a> = (
                Vec<Vec<(u32, LaneMask)>>,
                &'a mut [LaneMask],
                &'a mut [LaneMask],
            );
            let state: Vec<ListenerDrain> = {
                let mut state = Vec::with_capacity(k);
                let mut once_rest: &mut [LaneMask] = &mut once;
                let mut twice_rest: &mut [LaneMask] = &mut twice;
                let mut prev = 0u32;
                for (l, buckets) in regrouped.into_iter().enumerate() {
                    let (_, end) = plan.range(l);
                    let (once_l, o_rest) = once_rest.split_at_mut((end - prev) as usize);
                    let (twice_l, t_rest) = twice_rest.split_at_mut((end - prev) as usize);
                    once_rest = o_rest;
                    twice_rest = t_rest;
                    prev = end;
                    state.push((buckets, once_l, twice_l));
                }
                state
            };
            let drained = range_passes(state, threads, |l, (buckets, once_l, twice_l)| {
                let (start, _) = plan.range(l);
                let mut local_touched: Vec<u32> = Vec::new();
                for bucket in &buckets {
                    for &(t, need) in bucket {
                        let ti = (t - start) as usize;
                        if once_l[ti] | twice_l[ti] == 0 {
                            local_touched.push(t);
                        }
                        twice_l[ti] |= once_l[ti] & need;
                        once_l[ti] |= need;
                    }
                }
                let mut heard: Vec<(u32, LaneMask)> = Vec::with_capacity(local_touched.len());
                for t in local_touched {
                    let ti = (t - start) as usize;
                    let hear = once_l[ti] & !twice_l[ti];
                    once_l[ti] = 0;
                    twice_l[ti] = 0;
                    if hear != 0 {
                        heard.push((t, hear));
                    }
                }
                heard
            });

            let mut changed = false;
            for heard in drained {
                for (t, hear) in heard {
                    let ti = t as usize;
                    let newly = informed.insert_masked(t, hear);
                    if newly != 0 {
                        changed = true;
                        if !in_plist[ti] {
                            in_plist[ti] = true;
                            act[ti] = 0;
                            plist[plan.shard_of(t)].push(t);
                        }
                    }
                }
            }

            count_arena.extend_from_slice(informed.counts().planes());
            count_arena.resize(executed * plane_width, 0);

            if changed {
                let comp = informed.counts().eq_mask(n as u64) & !completed;
                record_crossings(comp, round, &mut completion_round);
                completed |= comp;
                if almost_done != !0 {
                    let almost = informed.counts().ge_mask(almost_target) & !almost_done;
                    record_crossings(almost, round, &mut almost_round);
                    almost_done |= almost;
                }
            }

            if decay && j + 1 < epoch_len {
                for list in &plist {
                    for &v in list {
                        let vi = v as usize;
                        if act[vi] != 0 {
                            act[vi] &= decay_tape.fair_mask(radio_site(r0, v));
                        }
                    }
                }
            }
        }

        FastRadioBatch {
            n,
            horizon: self.horizon,
            informed,
            completion_round,
            almost_round,
            exhausted,
            exhaust_end,
            plane_width,
            count_arena,
            executed,
        }
    }

    /// Runs the model's placement preprocessing against this plan's
    /// CSR adjacency. Call once per plan before any `*_model` run of a
    /// placement-based model.
    pub fn preprocess<M: FaultModel + ?Sized>(&self, model: &mut M) {
        model.preprocess_graph(&self.offsets, &self.neighbors, self.source);
    }

    /// [`run_lane`](Self::run_lane) under an arbitrary [`FaultModel`].
    /// `Silent` models run the frontier replay (byte-identical to the
    /// omission path for [`Omission`]); corrupted-value models
    /// (`Flip` / `Lie`) run the value-tracking replay — a corrupted
    /// transmitter still transmits and collides, but delivers a
    /// corrupted message, and the outcome's informed set and growth
    /// curve track the **correctly informed** nodes.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64`.
    #[must_use]
    pub fn run_lane_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        block_seed: u64,
        lane: u32,
    ) -> FastRadioOutcome {
        assert!((lane as usize) < LANES, "lane out of range");
        let tapes = FaultTapes::new(block_seed);
        let decay_tape = BatchTape::new(block_seed, DECAY_STREAM);
        match model.kind() {
            CorruptionKind::Silent => self.run_lane_silent(model, &tapes, &decay_tape, lane),
            _ => self.run_lane_values_sharded(
                &ShardPlan::uniform(self.n, 1),
                model,
                &tapes,
                &decay_tape,
                lane,
            ),
        }
    }

    /// [`run_batch`](Self::run_batch) under an arbitrary
    /// [`FaultModel`]; lane `k` is byte-identical to
    /// [`run_lane_model`](Self::run_lane_model)`(model, block_seed,
    /// k)`. See [`run_lane_model`](Self::run_lane_model) for the
    /// corrupted-value semantics.
    #[must_use]
    pub fn run_batch_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        block_seed: u64,
    ) -> FastRadioBatch {
        let tapes = FaultTapes::new(block_seed);
        let decay_tape = BatchTape::new(block_seed, DECAY_STREAM);
        match model.kind() {
            CorruptionKind::Silent => self.run_batch_silent(model, &tapes, &decay_tape),
            _ => self.run_batch_values_sharded(
                &ShardPlan::uniform(self.n, 1),
                model,
                &tapes,
                &decay_tape,
            ),
        }
    }

    /// [`run_lane_sharded`](Self::run_lane_sharded) under an arbitrary
    /// [`FaultModel`]; bit-identical to
    /// [`run_lane_model`](Self::run_lane_model) for every plan.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64` or the plan covers a different node count.
    #[must_use]
    pub fn run_lane_sharded_model<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        block_seed: u64,
        lane: u32,
    ) -> FastRadioOutcome {
        assert!((lane as usize) < LANES, "lane out of range");
        let tapes = FaultTapes::new(block_seed);
        let decay_tape = BatchTape::new(block_seed, DECAY_STREAM);
        match model.kind() {
            CorruptionKind::Silent => {
                self.run_lane_sharded_silent(plan, model, &tapes, &decay_tape, lane)
            }
            _ => self.run_lane_values_sharded(plan, model, &tapes, &decay_tape, lane),
        }
    }

    /// [`run_batch_sharded`](Self::run_batch_sharded) under an
    /// arbitrary [`FaultModel`]; bit-identical to
    /// [`run_batch_model`](Self::run_batch_model) for every plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different node count.
    #[must_use]
    pub fn run_batch_sharded_model<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        block_seed: u64,
    ) -> FastRadioBatch {
        let tapes = FaultTapes::new(block_seed);
        let decay_tape = BatchTape::new(block_seed, DECAY_STREAM);
        match model.kind() {
            CorruptionKind::Silent => {
                self.run_batch_sharded_silent(plan, model, &tapes, &decay_tape)
            }
            _ => self.run_batch_values_sharded(plan, model, &tapes, &decay_tape),
        }
    }

    /// Corrupted-value scalar backend, executed shard-at-a-time (the
    /// monolithic entry points pass a single-shard plan — same code,
    /// same iteration order, bit-identical). Faults never silence:
    /// every active node transmits, so the collision process is the
    /// fault-free one and only message *values* are at stake. A sole
    /// receiver adopts whatever its one audible neighbor sent — a
    /// `Flip` transmitter sends its own value XOR the corruption coin,
    /// a `Lie` transmitter sends the true value only when uncorrupted
    /// and holding it — and retransmits that value in later epochs.
    /// The returned informed set and growth curve track the correctly
    /// informed nodes (the quantity the paper's malicious feasibility
    /// results are about); participation and exhaustion bookkeeping
    /// run on the heard set, exactly like the silent replay.
    fn run_lane_values_sharded<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        tapes: &FaultTapes,
        decay_tape: &BatchTape,
        lane: u32,
    ) -> FastRadioOutcome {
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        let n = self.n;
        let k = plan.shard_count();
        let mut heard = InformedSet::new(n);
        heard.insert(self.source);
        let mut val = vec![false; n];
        val[self.source as usize] = true;
        let mut correct = InformedSet::new(n);
        correct.insert(self.source);
        let mut informed_by_round = Vec::with_capacity(self.horizon.min(1024) + 1);
        informed_by_round.push(1);
        let mut completion_round = (n == 1).then_some(0);

        let mut participants: Vec<Vec<u32>> = vec![Vec::new(); k];
        participants[plan.shard_of(self.source)].push(self.source);
        let mut active: Vec<Vec<u32>> = vec![Vec::new(); k];
        // Sole-receiver resolution carrying the first transmitter's
        // value: `vonce[v]` is meaningful while `once[v]` is set.
        let mut once = vec![false; n];
        let mut twice = vec![false; n];
        let mut vonce = vec![false; n];
        let mut touched: Vec<u32> = Vec::new();

        let (decay, epoch_len) = match self.schedule {
            FastRadioSchedule::Decay { epoch_len } => (true, epoch_len),
            FastRadioSchedule::AllInformed => (false, 1),
        };

        for round in 1..=self.horizon {
            if completion_round.is_some() {
                break;
            }
            let r0 = round - 1;
            let j = r0 % epoch_len;
            if j == 0 {
                let mut any = false;
                for (s, (parts, act_list)) in
                    participants.iter_mut().zip(active.iter_mut()).enumerate()
                {
                    act_list.clear();
                    if parts.is_empty() {
                        continue;
                    }
                    let (start, end) = plan.range(s);
                    let view = ShardView::over(&self.offsets, &self.neighbors, start, end);
                    parts.retain(|&u| view.targets_of(u).iter().any(|&t| !heard.contains(t)));
                    act_list.extend_from_slice(parts);
                    any |= !parts.is_empty();
                }
                if !any {
                    break;
                }
            }

            for (s, act_list) in active.iter().enumerate() {
                if act_list.is_empty() {
                    continue;
                }
                let (start, end) = plan.range(s);
                let view = ShardView::over(&self.offsets, &self.neighbors, start, end);
                for &u in act_list {
                    let ui = u as usize;
                    // Coins are site-addressed pure functions, so
                    // skipping the draw for a transmission no listener
                    // can use leaves every other read untouched.
                    if !view.targets_of(u).iter().any(|&t| !heard.contains(t)) {
                        continue;
                    }
                    let corrupt = model.corrupt_lane(tapes, radio_site(r0, u), u, lane);
                    let txval = match model.kind() {
                        CorruptionKind::Flip => val[ui] ^ corrupt,
                        _ => val[ui] && !corrupt,
                    };
                    for &v in view.targets_of(u) {
                        let vi = v as usize;
                        if heard.contains(v) {
                            continue;
                        }
                        if once[vi] {
                            twice[vi] = true;
                        } else {
                            once[vi] = true;
                            vonce[vi] = txval;
                            touched.push(v);
                        }
                    }
                }
            }
            for &v in &touched {
                let vi = v as usize;
                if !twice[vi] {
                    heard.insert(v);
                    participants[plan.shard_of(v)].push(v);
                    val[vi] = vonce[vi];
                    if val[vi] {
                        correct.insert(v);
                    }
                }
                once[vi] = false;
                twice[vi] = false;
            }
            touched.clear();

            informed_by_round.push(correct.count());
            if correct.count() == n {
                completion_round = Some(round);
            }

            if decay && j + 1 < epoch_len {
                for list in &mut active {
                    list.retain(|&u| decay_tape.fair_lane(radio_site(r0, u), lane));
                }
            }
        }

        FastRadioOutcome {
            n,
            horizon: self.horizon,
            completion_round,
            informed_by_round,
            informed: correct,
        }
    }

    /// Corrupted-value 64-lane batch backend, executed shard-at-a-time
    /// (the monolithic entry points pass a single-shard plan). The
    /// machinery of the silent batch with the fault application moved
    /// from transmissions to values: `useful` lanes all transmit, the
    /// `≥ 1` / `≥ 2` collision masks gain a first-transmitter value
    /// mask, and a sole receiver adopts that value. Counts, crossings,
    /// and the final informed set track the correctly informed nodes;
    /// participation and exhaustion run on the heard set.
    fn run_batch_values_sharded<M: FaultModel + ?Sized>(
        &self,
        plan: &ShardPlan,
        model: &M,
        tapes: &FaultTapes,
        decay_tape: &BatchTape,
    ) -> FastRadioBatch {
        assert_eq!(plan.node_count(), self.n, "plan/graph node count mismatch");
        let n = self.n;
        let k = plan.shard_count();
        let mut heard = BatchedInformedSet::new(n);
        heard.insert_masked(self.source, !0);
        let mut value_masks = vec![0u64; n];
        value_masks[self.source as usize] = !0;
        let mut correct_counts = LaneCounter::new();
        correct_counts.add_masked(!0, 1);
        let almost_target = n.saturating_sub(1).max(1) as u64;

        let mut completion_round: Vec<Option<usize>> = vec![None; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        let mut completed: LaneMask = 0;
        let mut almost_done: LaneMask = 0;
        if n == 1 {
            completed = !0;
            completion_round.fill(Some(0));
        }
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        let plane_width = (usize::BITS - n.leading_zeros()) as usize;
        let mut count_arena: Vec<u64> = Vec::new();
        let mut executed = 0usize;

        let mut exhausted: LaneMask = 0;
        let mut exhaust_end = vec![0usize; LANES];

        let mut plist: Vec<Vec<u32>> = vec![Vec::new(); k];
        plist[plan.shard_of(self.source)].push(self.source);
        let mut in_plist = vec![false; n];
        in_plist[self.source as usize] = true;
        let mut act: Vec<LaneMask> = vec![0; n];

        let mut once: Vec<LaneMask> = vec![0; n];
        let mut twice: Vec<LaneMask> = vec![0; n];
        let mut vonce: Vec<LaneMask> = vec![0; n];
        let mut touched: Vec<u32> = Vec::new();

        let (decay, epoch_len) = match self.schedule {
            FastRadioSchedule::Decay { epoch_len } => (true, epoch_len),
            FastRadioSchedule::AllInformed => (false, 1),
        };

        for round in 1..=self.horizon {
            let live = !(completed | exhausted);
            if live == 0 {
                break;
            }
            let r0 = round - 1;
            let j = r0 % epoch_len;
            if j == 0 {
                let mut any: LaneMask = 0;
                for (s, list) in plist.iter_mut().enumerate() {
                    if list.is_empty() {
                        continue;
                    }
                    let (start, end) = plan.range(s);
                    let view = ShardView::over(&self.offsets, &self.neighbors, start, end);
                    list.retain(|&v| {
                        let vi = v as usize;
                        let inf_v = heard.lanes(v);
                        let mut un: LaneMask = 0;
                        for &t in view.targets_of(v) {
                            un |= !heard.lanes(t);
                            if un & inf_v == inf_v {
                                break;
                            }
                        }
                        let m = inf_v & un;
                        act[vi] = m;
                        any |= m;
                        if m == 0 {
                            in_plist[vi] = false;
                        }
                        m != 0
                    });
                }
                let newly_exhausted = live & !any;
                if newly_exhausted != 0 {
                    exhausted |= newly_exhausted;
                    let mut bits = newly_exhausted;
                    while bits != 0 {
                        exhaust_end[bits.trailing_zeros() as usize] = executed;
                        bits &= bits - 1;
                    }
                    if live & any == 0 {
                        break;
                    }
                }
            }
            executed += 1;

            for (s, list) in plist.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let (start, end) = plan.range(s);
                let view = ShardView::over(&self.offsets, &self.neighbors, start, end);
                for &v in list {
                    let a = act[v as usize];
                    if a == 0 {
                        continue;
                    }
                    let mut un_v: LaneMask = 0;
                    for &t in view.targets_of(v) {
                        un_v |= !heard.lanes(t);
                        if un_v & a == a {
                            break;
                        }
                    }
                    let useful = a & un_v;
                    if useful == 0 {
                        continue;
                    }
                    // Every useful lane transmits; the coin corrupts
                    // the delivered value instead of the delivery.
                    let corrupt = model.corrupt_mask(tapes, radio_site(r0, v), v, useful);
                    let txval = match model.kind() {
                        CorruptionKind::Flip => (value_masks[v as usize] ^ corrupt) & useful,
                        _ => value_masks[v as usize] & !corrupt & useful,
                    };
                    for &t in view.targets_of(v) {
                        let ti = t as usize;
                        let need = useful & !heard.lanes(t);
                        if need == 0 {
                            continue;
                        }
                        if once[ti] | twice[ti] == 0 {
                            touched.push(t);
                        }
                        // Lanes where `v` is the first transmitter at
                        // `t` record `v`'s value; a second transmitter
                        // marks the collision and the value is moot.
                        let first = need & !once[ti];
                        vonce[ti] |= txval & first;
                        twice[ti] |= once[ti] & need;
                        once[ti] |= need;
                    }
                }
            }

            let mut changed = false;
            for &t in &touched {
                let ti = t as usize;
                let hear = once[ti] & !twice[ti];
                once[ti] = 0;
                twice[ti] = 0;
                let adopted = vonce[ti] & hear;
                vonce[ti] = 0;
                if hear == 0 {
                    continue;
                }
                let newly = heard.insert_masked(t, hear);
                if newly != 0 {
                    changed = true;
                    value_masks[ti] |= adopted & newly;
                    correct_counts.add_masked(adopted & newly, 1);
                    if !in_plist[ti] {
                        in_plist[ti] = true;
                        act[ti] = 0;
                        plist[plan.shard_of(t)].push(t);
                    }
                }
            }
            touched.clear();

            count_arena.extend_from_slice(correct_counts.planes());
            count_arena.resize(executed * plane_width, 0);

            if changed {
                let comp = correct_counts.eq_mask(n as u64) & !completed;
                record_crossings(comp, round, &mut completion_round);
                completed |= comp;
                if almost_done != !0 {
                    let almost = correct_counts.ge_mask(almost_target) & !almost_done;
                    record_crossings(almost, round, &mut almost_round);
                    almost_done |= almost;
                }
            }

            if decay && j + 1 < epoch_len {
                for list in &plist {
                    for &v in list {
                        let vi = v as usize;
                        if act[vi] != 0 {
                            act[vi] &= decay_tape.fair_mask(radio_site(r0, v));
                        }
                    }
                }
            }
        }

        FastRadioBatch {
            n,
            horizon: self.horizon,
            informed: BatchedInformedSet::from_parts(value_masks, correct_counts),
            completion_round,
            almost_round,
            exhausted,
            exhaust_end,
            plane_width,
            count_arena,
            executed,
        }
    }
}

/// Out-of-core radio broadcasting: the [`FastRadio::run_lane`]
/// algorithm executed against a [`ShardStore`], loading one shard's
/// CSR rows at a time through a reusable [`ShardScratch`] so peak RSS
/// stays near one shard plus the node-level state — the `n = 10⁸`
/// path. Outcomes are **bit-identical** to [`FastRadio::run_lane`] on
/// the same adjacency: the coin tape and sites are the same, the
/// global [`CollisionCounter`] accumulates across every shard's
/// transmit pass before the round's single sole-receiver drain, and
/// the epoch-exhaustion sweep reads the participation union only after
/// every segment's refilter has been folded in — the same points in
/// the round where the monolithic replay reads them.
pub struct ShardedRadio {
    store: ShardStore,
    source: u32,
    horizon: usize,
    schedule: FastRadioSchedule,
    threads: usize,
    prefetch: bool,
}

impl ShardedRadio {
    /// Wraps a shard store for radio broadcasting from `source` over
    /// at most `horizon` rounds under `schedule`. Runs single-threaded
    /// with segment prefetch on; both knobs
    /// ([`with_threads`](Self::with_threads),
    /// [`with_prefetch`](Self::with_prefetch)) are outcome-invisible.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    #[must_use]
    pub fn new(
        store: ShardStore,
        source: u32,
        horizon: usize,
        schedule: FastRadioSchedule,
    ) -> Self {
        assert!(
            (source as usize) < store.node_count(),
            "source out of range"
        );
        ShardedRadio {
            store,
            source,
            horizon,
            schedule,
            threads: 1,
            prefetch: true,
        }
    }

    /// Sets the worker count for the parallel collision drain
    /// (byte-outcome-invisible; clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the background segment prefetcher
    /// (byte-outcome-invisible; on by default).
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// The underlying shard store.
    #[must_use]
    pub fn store(&self) -> &ShardStore {
        &self.store
    }

    /// Unwraps the shard store, e.g. to hand the same on-disk segments
    /// to another kernel without rebuilding them.
    #[must_use]
    pub fn into_store(self) -> ShardStore {
        self.store
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.store.node_count()
    }

    /// The horizon (maximum number of rounds executed).
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The transmission schedule.
    #[must_use]
    pub fn schedule(&self) -> FastRadioSchedule {
        self.schedule
    }

    /// Scalar lane replay over the shard store; bit-identical to
    /// [`FastRadio::run_lane`] on the same adjacency. Each round makes
    /// one shard-at-a-time transmit pass (plus, at epoch boundaries,
    /// one refilter pass); for disk stores each shard pass is served
    /// either by a full segment read overlapped with the previous
    /// shard's compute (the [`PassLoader`] prefetch pipeline) or, when
    /// the pass touches a small fraction of the shard — the common case
    /// under Decay thinning — by coalesced sparse row reads that skip
    /// the segment decode entirely. Neither choice, nor the
    /// `threads`/`prefetch` knobs, can change a byte of the outcome.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] (and friends) if a disk
    /// segment cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or `lane ≥ 64`.
    pub fn run_lane(
        &self,
        p: f64,
        block_seed: u64,
        lane: u32,
    ) -> Result<FastRadioOutcome, ShardError> {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        assert!((lane as usize) < LANES, "lane out of range");
        self.run_lane_model(&Omission::new(p), block_seed, lane)
    }

    /// [`run_lane`](Self::run_lane) under an arbitrary `Silent`
    /// [`FaultModel`]. Run the model's preprocessing against the
    /// in-core CSR before sharding if the model needs placement.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] (and friends) if a disk
    /// segment cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64` or the model is not `Silent` — the
    /// corrupted-value radio pass carries per-node heard values and is
    /// served in core (use [`FastRadio::run_lane_model`]).
    pub fn run_lane_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        block_seed: u64,
        lane: u32,
    ) -> Result<FastRadioOutcome, ShardError> {
        assert!((lane as usize) < LANES, "lane out of range");
        assert!(
            model.kind() == CorruptionKind::Silent,
            "out-of-core radio supports silent fault models only"
        );
        let tapes = FaultTapes::new(block_seed);
        let decay_tape = BatchTape::new(block_seed, DECAY_STREAM);
        let plan = self.store.plan().clone();
        let n = plan.node_count();
        let k = plan.shard_count();
        let mut loader = PassLoader::new(&self.store, self.prefetch);
        let mut sorted: Vec<u32> = Vec::new();
        let mut full_pass: Vec<usize> = Vec::new();
        let mut informed = InformedSet::new(n);
        informed.insert(self.source);
        let mut informed_by_round = Vec::with_capacity(self.horizon.min(1024) + 1);
        informed_by_round.push(1);
        let mut completion_round = (n == 1).then_some(0);

        let mut participants: Vec<Vec<u32>> = vec![Vec::new(); k];
        participants[plan.shard_of(self.source)].push(self.source);
        let mut active: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut counter = ShardedCollisions::new(plan.bounds());

        let (decay, epoch_len) = match self.schedule {
            FastRadioSchedule::Decay { epoch_len } => (true, epoch_len),
            FastRadioSchedule::AllInformed => (false, 1),
        };

        for round in 1..=self.horizon {
            if completion_round.is_some() {
                break;
            }
            let r0 = round - 1;
            let j = r0 % epoch_len;
            if j == 0 {
                // Announce the refilter pass's full-view shards before
                // touching any of them, so the reader thread works
                // ahead of the compute.
                full_pass.clear();
                for (s, parts) in participants.iter().enumerate() {
                    if !parts.is_empty() && !loader.use_sparse(s, parts.len()) {
                        full_pass.push(s);
                    }
                }
                loader.begin_pass(&full_pass);
                let mut any = false;
                for (s, (parts, act_list)) in
                    participants.iter_mut().zip(active.iter_mut()).enumerate()
                {
                    act_list.clear();
                    if parts.is_empty() {
                        continue;
                    }
                    let sparse = loader.use_sparse(s, parts.len());
                    if sparse {
                        sorted.clear();
                        sorted.extend_from_slice(parts);
                        sorted.sort_unstable();
                    }
                    let view = loader.view_pass(s, &sorted, sparse)?;
                    parts.retain(|&u| view.targets_of(u).iter().any(|&t| !informed.contains(t)));
                    act_list.extend_from_slice(parts);
                    any |= !parts.is_empty();
                }
                if !any {
                    break;
                }
            }

            // The collision counter accumulates across every shard's
            // transmit pass and drains exactly once per round, so
            // cross-shard collisions block exactly as in the
            // monolithic replay.
            full_pass.clear();
            for (s, act_list) in active.iter().enumerate() {
                if !act_list.is_empty() && !loader.use_sparse(s, act_list.len()) {
                    full_pass.push(s);
                }
            }
            loader.begin_pass(&full_pass);
            for (s, act_list) in active.iter().enumerate() {
                if act_list.is_empty() {
                    continue;
                }
                let sparse = loader.use_sparse(s, act_list.len());
                if sparse {
                    sorted.clear();
                    sorted.extend_from_slice(act_list);
                    sorted.sort_unstable();
                }
                let view = loader.view_pass(s, &sorted, sparse)?;
                for &u in act_list {
                    if model.corrupt_lane(&tapes, radio_site(r0, u), u, lane) {
                        continue;
                    }
                    for &v in view.targets_of(u) {
                        if !informed.contains(v) {
                            counter.add(v);
                        }
                    }
                }
            }
            counter.drain_sole_receivers(self.threads, |s, v| {
                informed.insert(v);
                participants[s].push(v);
            });

            informed_by_round.push(informed.count());
            if informed.count() == n {
                completion_round = Some(round);
            }

            if decay && j + 1 < epoch_len {
                for list in &mut active {
                    list.retain(|&u| decay_tape.fair_lane(radio_site(r0, u), lane));
                }
            }
        }

        Ok(FastRadioOutcome {
            n,
            horizon: self.horizon,
            completion_round,
            informed_by_round,
            informed,
        })
    }

    /// One batched 64-lane block over the shard store — the lane
    /// semantics of [`FastRadio::run_batch_sharded`], with every
    /// segment read amortized across all 64 trials. Per-lane outcomes
    /// are byte-identical to 64 scalar [`run_lane`](Self::run_lane)
    /// replays of the same block seed.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] (and friends) if a disk
    /// segment cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    pub fn run_batch(&self, p: f64, block_seed: u64) -> Result<FastRadioBatch, ShardError> {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        self.run_batch_model(&Omission::new(p), block_seed)
    }

    /// [`run_batch`](Self::run_batch) under an arbitrary `Silent`
    /// [`FaultModel`].
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] (and friends) if a disk
    /// segment cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if the model is not `Silent`.
    pub fn run_batch_model<M: FaultModel + ?Sized>(
        &self,
        model: &M,
        block_seed: u64,
    ) -> Result<FastRadioBatch, ShardError> {
        assert!(
            model.kind() == CorruptionKind::Silent,
            "out-of-core radio supports silent fault models only"
        );
        let tapes = FaultTapes::new(block_seed);
        let decay_tape = BatchTape::new(block_seed, DECAY_STREAM);
        let plan = self.store.plan().clone();
        let n = plan.node_count();
        let k = plan.shard_count();
        let mut loader = PassLoader::new(&self.store, self.prefetch);
        let mut sorted: Vec<u32> = Vec::new();
        let mut full_pass: Vec<usize> = Vec::new();
        let mut informed = BatchedInformedSet::new(n);
        informed.insert_masked(self.source, !0);
        let almost_target = n.saturating_sub(1).max(1) as u64;

        let mut completion_round: Vec<Option<usize>> = vec![None; LANES];
        let mut almost_round: Vec<Option<usize>> = vec![None; LANES];
        let mut completed: LaneMask = 0;
        let mut almost_done: LaneMask = 0;
        if n == 1 {
            completed = !0;
            completion_round.fill(Some(0));
        }
        if 1 >= almost_target {
            almost_done = !0;
            almost_round.fill(Some(0));
        }

        let plane_width = (usize::BITS - n.leading_zeros()) as usize;
        let mut count_arena: Vec<u64> = Vec::new();
        let mut executed = 0usize;

        let mut exhausted: LaneMask = 0;
        let mut exhaust_end = vec![0usize; LANES];

        let mut plist: Vec<Vec<u32>> = vec![Vec::new(); k];
        plist[plan.shard_of(self.source)].push(self.source);
        let mut in_plist = vec![false; n];
        in_plist[self.source as usize] = true;
        let mut act: Vec<LaneMask> = vec![0; n];

        let mut once: Vec<LaneMask> = vec![0; n];
        let mut twice: Vec<LaneMask> = vec![0; n];
        let mut touched: Vec<u32> = Vec::new();

        let (decay, epoch_len) = match self.schedule {
            FastRadioSchedule::Decay { epoch_len } => (true, epoch_len),
            FastRadioSchedule::AllInformed => (false, 1),
        };

        for round in 1..=self.horizon {
            let live = !(completed | exhausted);
            if live == 0 {
                break;
            }
            let r0 = round - 1;
            let j = r0 % epoch_len;
            if j == 0 {
                full_pass.clear();
                for (s, list) in plist.iter().enumerate() {
                    if !list.is_empty() && !loader.use_sparse(s, list.len()) {
                        full_pass.push(s);
                    }
                }
                loader.begin_pass(&full_pass);
                let mut any: LaneMask = 0;
                for (s, list) in plist.iter_mut().enumerate() {
                    if list.is_empty() {
                        continue;
                    }
                    let sparse = loader.use_sparse(s, list.len());
                    if sparse {
                        sorted.clear();
                        sorted.extend_from_slice(list);
                        sorted.sort_unstable();
                    }
                    let view = loader.view_pass(s, &sorted, sparse)?;
                    list.retain(|&v| {
                        let vi = v as usize;
                        let inf_v = informed.lanes(v);
                        let mut un: LaneMask = 0;
                        for &t in view.targets_of(v) {
                            un |= !informed.lanes(t);
                            if un & inf_v == inf_v {
                                break;
                            }
                        }
                        let m = inf_v & un;
                        act[vi] = m;
                        any |= m;
                        if m == 0 {
                            in_plist[vi] = false;
                        }
                        m != 0
                    });
                }
                // Exhaustion is a whole-round property: read it only
                // after every shard's refilter has been folded in.
                let newly_exhausted = live & !any;
                if newly_exhausted != 0 {
                    exhausted |= newly_exhausted;
                    let mut bits = newly_exhausted;
                    while bits != 0 {
                        exhaust_end[bits.trailing_zeros() as usize] = executed;
                        bits &= bits - 1;
                    }
                    if live & any == 0 {
                        break;
                    }
                }
            }
            executed += 1;

            full_pass.clear();
            for (s, list) in plist.iter().enumerate() {
                if !list.is_empty() && !loader.use_sparse(s, list.len()) {
                    full_pass.push(s);
                }
            }
            loader.begin_pass(&full_pass);
            for (s, list) in plist.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let sparse = loader.use_sparse(s, list.len());
                if sparse {
                    sorted.clear();
                    sorted.extend_from_slice(list);
                    sorted.sort_unstable();
                }
                let view = loader.view_pass(s, &sorted, sparse)?;
                for &v in list {
                    let a = act[v as usize];
                    if a == 0 {
                        continue;
                    }
                    let mut un_v: LaneMask = 0;
                    for &t in view.targets_of(v) {
                        un_v |= !informed.lanes(t);
                        if un_v & a == a {
                            break;
                        }
                    }
                    let useful = a & un_v;
                    if useful == 0 {
                        continue;
                    }
                    let tx = useful & !model.corrupt_mask(&tapes, radio_site(r0, v), v, useful);
                    if tx == 0 {
                        continue;
                    }
                    for &t in view.targets_of(v) {
                        let ti = t as usize;
                        let need = tx & !informed.lanes(t);
                        if need == 0 {
                            continue;
                        }
                        if once[ti] | twice[ti] == 0 {
                            touched.push(t);
                        }
                        twice[ti] |= once[ti] & need;
                        once[ti] |= need;
                    }
                }
            }

            let mut changed = false;
            for &t in &touched {
                let ti = t as usize;
                let hear = once[ti] & !twice[ti];
                once[ti] = 0;
                twice[ti] = 0;
                if hear == 0 {
                    continue;
                }
                let newly = informed.insert_masked(t, hear);
                if newly != 0 {
                    changed = true;
                    if !in_plist[ti] {
                        in_plist[ti] = true;
                        act[ti] = 0;
                        plist[plan.shard_of(t)].push(t);
                    }
                }
            }
            touched.clear();

            count_arena.extend_from_slice(informed.counts().planes());
            count_arena.resize(executed * plane_width, 0);

            if changed {
                let comp = informed.counts().eq_mask(n as u64) & !completed;
                record_crossings(comp, round, &mut completion_round);
                completed |= comp;
                if almost_done != !0 {
                    let almost = informed.counts().ge_mask(almost_target) & !almost_done;
                    record_crossings(almost, round, &mut almost_round);
                    almost_done |= almost;
                }
            }

            if decay && j + 1 < epoch_len {
                for list in &plist {
                    for &v in list {
                        let vi = v as usize;
                        if act[vi] != 0 {
                            act[vi] &= decay_tape.fair_mask(radio_site(r0, v));
                        }
                    }
                }
            }
        }

        Ok(FastRadioBatch {
            n,
            horizon: self.horizon,
            informed,
            completion_round,
            almost_round,
            exhausted,
            exhaust_end,
            plane_width,
            count_arena,
            executed,
        })
    }
}

/// Outcome of one batched 64-lane radio block; per-lane views are
/// byte-identical to the corresponding [`FastRadio::run_lane`] replay.
#[derive(Clone, PartialEq, Debug)]
pub struct FastRadioBatch {
    n: usize,
    horizon: usize,
    informed: BatchedInformedSet,
    completion_round: Vec<Option<usize>>,
    almost_round: Vec<Option<usize>>,
    /// Lanes whose replay broke at an epoch boundary (participants
    /// exhausted before the horizon).
    exhausted: LaneMask,
    /// Rounds executed by each exhausted lane before its break.
    exhaust_end: Vec<usize>,
    plane_width: usize,
    /// `executed × plane_width` words: the per-lane informed counts
    /// after each executed round.
    count_arena: Vec<u64>,
    executed: usize,
}

impl FastRadioBatch {
    /// Number of nodes in the graph.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lane `k`'s completion round (`None` if that trial never
    /// completed).
    #[must_use]
    pub fn completion_round(&self, lane: u32) -> Option<usize> {
        self.completion_round[lane as usize]
    }

    /// Lane `k`'s first round with an almost-complete (`≥ n − 1`)
    /// informed set.
    #[must_use]
    pub fn almost_complete_round(&self, lane: u32) -> Option<usize> {
        self.almost_round[lane as usize]
    }

    /// Lane `k`'s final informed count.
    #[must_use]
    pub fn informed_count(&self, lane: u32) -> usize {
        self.informed.count(lane)
    }

    /// Lane `k`'s final informed fraction.
    #[must_use]
    pub fn informed_fraction(&self, lane: u32) -> f64 {
        self.informed.count(lane) as f64 / self.n as f64
    }

    /// The number of rounds lane `k`'s replay executed before stopping
    /// (completion, participant exhaustion, or the horizon).
    fn lane_end(&self, lane: u32) -> usize {
        if let Some(c) = self.completion_round[lane as usize] {
            c
        } else if self.exhausted >> lane & 1 == 1 {
            self.exhaust_end[lane as usize]
        } else {
            self.executed
        }
    }

    /// Reconstructs lane `k`'s full scalar outcome — equal to
    /// [`FastRadio::run_lane`] with the same block seed and lane.
    #[must_use]
    pub fn lane_outcome(&self, lane: u32) -> FastRadioOutcome {
        let mut informed = InformedSet::new(self.n);
        for v in 0..self.n as u32 {
            if self.informed.lane_contains(v, lane) {
                informed.insert(v);
            }
        }
        let end = self.lane_end(lane);
        let mut informed_by_round = Vec::with_capacity(end + 1);
        informed_by_round.push(1);
        for r in 0..end {
            let planes = &self.count_arena[r * self.plane_width..(r + 1) * self.plane_width];
            informed_by_round.push(LaneCounter::get_in(planes, lane) as usize);
        }
        FastRadioOutcome {
            n: self.n,
            horizon: self.horizon,
            completion_round: self.completion_round[lane as usize],
            informed_by_round,
            informed,
        }
    }
}

/// Outcome of one fast-path radio broadcast: the informed set, its
/// growth curve, and derived completion metrics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FastRadioOutcome {
    n: usize,
    horizon: usize,
    informed: InformedSet,
    completion_round: Option<usize>,
    /// `informed_by_round[r]` = nodes informed by the end of round `r`
    /// (`[0] == 1`, the source). The run stops early once nothing can
    /// change, so the vector may be shorter than `horizon + 1`; counts
    /// are constant from its last entry onward.
    informed_by_round: Vec<usize>,
}

impl FastRadioOutcome {
    /// Number of nodes in the graph.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The horizon the plan was allowed to run.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Whether every node (not just the source's component) was
    /// informed within the horizon.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.completion_round.is_some()
    }

    /// The round by which the last node was informed, `None` if the
    /// broadcast never completed (too few rounds, or the graph is
    /// disconnected from the source).
    #[must_use]
    pub fn completion_round(&self) -> Option<usize> {
        self.completion_round
    }

    /// Number of informed nodes at the end of the run.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.count()
    }

    /// Informed fraction `informed / n` at the end of the run.
    #[must_use]
    pub fn informed_fraction(&self) -> f64 {
        self.informed.count() as f64 / self.n as f64
    }

    /// Whether node `v` ended the run informed.
    #[must_use]
    pub fn is_informed(&self, v: NodeId) -> bool {
        self.informed.contains(u32::from(v))
    }

    /// The per-round cumulative informed counts (see the field docs).
    #[must_use]
    pub fn informed_by_round(&self) -> &[usize] {
        &self.informed_by_round
    }

    /// The first round by which at least `count` nodes were informed.
    #[must_use]
    pub fn round_reaching(&self, count: usize) -> Option<usize> {
        self.informed_by_round.iter().position(|&c| c >= count)
    }

    /// The first round by which an *almost-complete* set — at least
    /// `⌈(1 − 1/n)·n⌉ = n − 1` nodes — was informed; the metric of the
    /// rapid almost-complete broadcasting regime.
    #[must_use]
    pub fn almost_complete_round(&self) -> Option<usize> {
        self.round_reaching(self.n.saturating_sub(1).max(1))
    }

    /// The first round by which at least `frac · n` nodes (rounded up)
    /// were informed.
    ///
    /// # Panics
    ///
    /// Panics if `frac ∉ [0, 1]`.
    #[must_use]
    pub fn time_to_fraction(&self, frac: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&frac), "fraction out of range");
        let target = (frac * self.n as f64).ceil() as usize;
        self.round_reaching(target.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_graph::{generators, Graph, GraphBuilder};

    fn plan(g: &Graph, horizon: usize, schedule: FastRadioSchedule) -> FastRadio {
        FastRadio::new(CsrGraph::from(g), g.node(0), horizon, schedule)
    }

    fn decay_plan(g: &Graph, horizon: usize) -> FastRadio {
        let epoch_len = (g.node_count().max(2) as f64).log2().ceil() as usize + 1;
        plan(g, horizon, FastRadioSchedule::Decay { epoch_len })
    }

    #[test]
    fn fault_free_decay_completes_on_families() {
        for g in [
            generators::path(12),
            generators::star(16),
            generators::grid(5, 5),
            generators::complete(12),
        ] {
            let plan = decay_plan(&g, 4000);
            let mut ok = 0;
            for seed in 0..10 {
                ok += usize::from(plan.run(0.0, seed).complete());
            }
            assert!(ok >= 9, "n={} ok={ok}", g.node_count());
        }
    }

    #[test]
    fn decay_survives_omission_faults() {
        let g = generators::grid(5, 5);
        let plan = decay_plan(&g, 8000);
        let mut ok = 0;
        for seed in 0..20 {
            ok += usize::from(plan.run(0.5, seed).complete());
        }
        assert!(ok >= 18, "ok={ok}");
    }

    #[test]
    fn decay_breaks_high_contention() {
        // Complete bipartite: after one step all of side A is informed;
        // all-informed transmission then collides essentially forever,
        // while decay's back-off resolves it.
        let g = generators::complete_bipartite(8, 8);
        let decay = decay_plan(&g, 2000);
        let naive = plan(&g, 2000, FastRadioSchedule::AllInformed);
        let mut decay_ok = 0;
        let mut naive_ok = 0;
        for seed in 0..10 {
            decay_ok += usize::from(decay.run(0.0, seed).complete());
            naive_ok += usize::from(naive.run(0.0, seed).complete());
        }
        assert!(decay_ok >= 9, "decay_ok={decay_ok}");
        assert_eq!(naive_ok, 0, "fault-free collisions never resolve");
    }

    #[test]
    fn all_informed_on_a_path_is_plain_flooding() {
        // Along a path each uninformed node has exactly one informed
        // neighbor, so there are no collisions and the fault-free
        // all-informed schedule is BFS flooding.
        let g = generators::path(9);
        let plan = plan(&g, 100, FastRadioSchedule::AllInformed);
        let out = plan.run(0.0, 1);
        assert_eq!(out.completion_round(), Some(9));
        assert_eq!(out.informed_by_round(), &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn interior_collisions_block_on_a_cycle_start() {
        // Cycle: round 1 informs both neighbors of the source; their
        // two transmissions then collide at nobody (each has a distinct
        // uninformed neighbor), so all-informed completes fault-free…
        // except the final node, which hears both ends of the cycle
        // simultaneously and collides forever on even cycles.
        let g = generators::cycle(6);
        let plan = plan(&g, 500, FastRadioSchedule::AllInformed);
        let out = plan.run(0.0, 2);
        assert!(!out.complete());
        assert_eq!(out.informed_count(), 5, "the antipode is blocked");
        // With faults the tie eventually breaks.
        let out = plan.run(0.3, 2);
        assert!(out.complete());
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::grid(6, 6);
        let plan = decay_plan(&g, 2000);
        assert_eq!(plan.run(0.4, 7), plan.run(0.4, 7));
        assert_ne!(
            plan.run(0.4, 7).informed_by_round(),
            plan.run(0.4, 8).informed_by_round(),
            "different seeds should (generically) differ"
        );
    }

    #[test]
    fn csr_and_graph_construction_agree() {
        let csr = generators::preferential_attachment_csr(
            180,
            3,
            &mut rand::rngs::SmallRng::seed_from_u64(4),
        );
        let g = Graph::from(&csr);
        let epoch_len = 9;
        let a = FastRadio::new(
            csr.clone(),
            g.node(0),
            900,
            FastRadioSchedule::Decay { epoch_len },
        );
        let b = plan(&g, 900, FastRadioSchedule::Decay { epoch_len });
        for seed in 0..5 {
            assert_eq!(a.run(0.3, seed), b.run(0.3, seed));
        }
    }

    #[test]
    fn counts_are_monotone_and_bounded() {
        let g = generators::grid(7, 5);
        for p in [0.0, 0.3, 0.9] {
            let plan = decay_plan(&g, 3000);
            let out = plan.run(p, 11);
            let counts = out.informed_by_round();
            assert!(counts.windows(2).all(|w| w[0] <= w[1]), "p={p}");
            assert!(*counts.last().unwrap() <= out.n());
            assert_eq!(*counts.last().unwrap(), out.informed_count());
        }
    }

    #[test]
    fn disconnected_graph_reports_partial_fraction() {
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1).edge(1, 2).edge(0, 2).edge(3, 4);
        let g = b.finish().unwrap();
        let plan = decay_plan(&g, 2000);
        let out = plan.run(0.0, 1);
        assert!(!out.complete());
        assert_eq!(out.informed_count(), 3);
        assert!((out.informed_fraction() - 0.6).abs() < 1e-12);
        assert!(out.is_informed(g.node(2)));
        assert!(!out.is_informed(g.node(3)));
        assert_eq!(out.almost_complete_round(), None);
        assert!(out.time_to_fraction(0.6).is_some());
        // And the run stopped long before the horizon: once the
        // component is saturated an epoch boundary breaks the loop.
        assert!(out.informed_by_round().len() < 100);
    }

    #[test]
    fn single_node_graph_is_complete_at_round_zero() {
        let g = generators::path(0);
        let plan = decay_plan(&g, 50);
        let out = plan.run(0.3, 9);
        assert!(out.complete());
        assert_eq!(out.completion_round(), Some(0));
        assert_eq!(out.almost_complete_round(), Some(0));
    }

    #[test]
    fn zero_horizon_reports_only_the_source() {
        let g = generators::path(5);
        let plan = decay_plan(&g, 0);
        let out = plan.run(0.2, 3);
        assert!(!out.complete());
        assert_eq!(out.informed_count(), 1);
        assert_eq!(out.informed_by_round(), &[1]);
    }

    #[test]
    fn high_p_star_completes_eventually() {
        // Star from the center: leaves have a single informed neighbor,
        // so every successful center transmission informs them all.
        let g = generators::star(8);
        let plan = plan(&g, 4000, FastRadioSchedule::AllInformed);
        for seed in 0..20 {
            assert!(plan.run(0.95, seed).complete(), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_epoch_len_is_rejected() {
        let g = generators::path(3);
        let _ = plan(&g, 10, FastRadioSchedule::Decay { epoch_len: 0 });
    }

    #[test]
    fn batch_lanes_reproduce_scalar_lane_replays() {
        let graphs = [
            generators::grid(5, 5),
            generators::star(9),
            generators::cycle(6),
            generators::complete_bipartite(4, 5),
        ];
        for g in &graphs {
            let epoch_len = (g.node_count().max(2) as f64).log2().ceil() as usize + 1;
            for schedule in [
                FastRadioSchedule::Decay { epoch_len },
                FastRadioSchedule::AllInformed,
            ] {
                let plan = plan(g, 700, schedule);
                for p in [0.0, 0.3, 0.76, 0.9] {
                    let seed = 1000 + (p * 100.0) as u64;
                    let batch = plan.run_batch(p, seed);
                    for lane in [0u32, 1, 17, 40, 63] {
                        let scalar = plan.run_lane(p, seed, lane);
                        assert_eq!(
                            batch.lane_outcome(lane),
                            scalar,
                            "n={} schedule={schedule:?} p={p} lane={lane}",
                            g.node_count()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_summary_accessors_match_lane_outcomes() {
        let g = generators::grid(6, 5);
        let plan = decay_plan(&g, 2000);
        let batch = plan.run_batch(0.4, 99);
        for lane in 0..LANES as u32 {
            let out = batch.lane_outcome(lane);
            assert_eq!(batch.completion_round(lane), out.completion_round());
            assert_eq!(
                batch.almost_complete_round(lane),
                out.almost_complete_round(),
                "lane {lane}"
            );
            assert_eq!(batch.informed_count(lane), out.informed_count());
        }
    }

    #[test]
    fn batch_handles_edge_case_graphs() {
        // Disconnected component, single node, and a zero horizon: the
        // per-lane replays stop early and so must the batch curves.
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1).edge(1, 2).edge(0, 2).edge(3, 4);
        let disconnected = b.finish().unwrap();
        for (g, horizon) in [
            (disconnected, 2000),
            (generators::path(0), 50),
            (generators::path(5), 0),
            (generators::path(1), 40),
        ] {
            let plan = decay_plan(&g, horizon);
            for p in [0.0, 0.5] {
                let batch = plan.run_batch(p, 7);
                for lane in [0u32, 31, 63] {
                    assert_eq!(
                        batch.lane_outcome(lane),
                        plan.run_lane(p, 7, lane),
                        "n={} horizon={horizon} p={p} lane={lane}",
                        plan.node_count()
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_and_dense_fault_samplers_agree_statistically() {
        // p on either side of the 0.75 sampler switch must produce
        // comparable completion-time distributions. Star center →
        // leaves under AllInformed: every successful center
        // transmission informs all leaves at once, so completion is the
        // first success — a Geometric(1 − p) wait with mean 1/(1 − p).
        let g = generators::star(8);
        let plan = plan(&g, 6000, FastRadioSchedule::AllInformed);
        let trials = 600u64;
        let mean = |p: f64| {
            let total: usize = (0..trials)
                .map(|s| plan.run(p, s).completion_round().expect("horizon ample"))
                .sum();
            total as f64 / trials as f64
        };
        for p in [0.74, 0.76] {
            let (m, e) = (mean(p), 1.0 / (1.0 - p));
            assert!((m - e).abs() < 0.08 * e, "p={p}: mean {m} vs {e}");
        }
    }

    #[test]
    fn sharded_lane_and_batch_match_monolithic_exactly() {
        let g = generators::gnp_connected(120, 0.04, &mut rand::rngs::SmallRng::seed_from_u64(11));
        let csr = CsrGraph::from(&g);
        for schedule in [
            FastRadioSchedule::Decay { epoch_len: 8 },
            FastRadioSchedule::AllInformed,
        ] {
            let fr = FastRadio::new(csr.clone(), g.node(0), 600, schedule);
            for shards in [1usize, 2, 3, 7] {
                let plan = ShardPlan::uniform(csr.node_count(), shards);
                for p in [0.0, 0.3, 0.8] {
                    let seed = 53 + shards as u64;
                    assert_eq!(
                        fr.run_batch_sharded(&plan, p, seed),
                        fr.run_batch(p, seed),
                        "batch diverged: {schedule:?} shards={shards} p={p}"
                    );
                    for lane in [0u32, 19, 63] {
                        assert_eq!(
                            fr.run_lane_sharded(&plan, p, seed, lane),
                            fr.run_lane(p, seed, lane),
                            "lane diverged: {schedule:?} shards={shards} p={p} lane={lane}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn thread_parallel_sharded_batch_matches_monolithic_exactly() {
        let g = generators::gnp_connected(120, 0.04, &mut rand::rngs::SmallRng::seed_from_u64(11));
        let csr = CsrGraph::from(&g);
        for schedule in [
            FastRadioSchedule::Decay { epoch_len: 8 },
            FastRadioSchedule::AllInformed,
        ] {
            let fr = FastRadio::new(csr.clone(), g.node(0), 600, schedule);
            for shards in [1usize, 2, 3, 7] {
                let plan = ShardPlan::uniform(csr.node_count(), shards);
                for p in [0.0, 0.3, 0.8] {
                    let seed = 213 + shards as u64;
                    let mono = fr.run_batch(p, seed);
                    for threads in [1usize, 2, 4, 9] {
                        assert_eq!(
                            fr.run_batch_sharded_threads(&plan, p, seed, threads),
                            mono,
                            "diverged: {schedule:?} shards={shards} threads={threads} p={p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_core_radio_matches_the_monolithic_lane_replay() {
        use randcast_graph::shard::{default_scratch_dir, ShardStore, ShardedCsr, SpillSink};
        let g = generators::gnp_connected(110, 0.05, &mut rand::rngs::SmallRng::seed_from_u64(9));
        let csr = CsrGraph::from(&g);
        let n = csr.node_count();
        let epoch_len = (n.max(2) as f64).log2().ceil() as usize + 1;
        let plan = ShardPlan::uniform(n, 3);
        for schedule in [
            FastRadioSchedule::Decay { epoch_len },
            FastRadioSchedule::AllInformed,
        ] {
            let fr = FastRadio::new(csr.clone(), g.node(0), 900, schedule);
            let ram = ShardedRadio::new(
                ShardStore::Ram(ShardedCsr::split(&csr, plan.clone())),
                0,
                900,
                schedule,
            );
            let mut sink = SpillSink::create(default_scratch_dir(), plan.clone()).unwrap();
            for v in 0..n {
                for &t in csr.neighbors_of(v) {
                    if (v as u32) < t {
                        sink.push(v as u64, u64::from(t)).unwrap();
                    }
                }
            }
            let disk =
                ShardedRadio::new(ShardStore::Disk(sink.finalize().unwrap()), 0, 900, schedule);
            for p in [0.0, 0.5] {
                for lane in [0u32, 7, 63] {
                    let mono = fr.run_lane(p, 77, lane);
                    assert_eq!(
                        ram.run_lane(p, 77, lane).unwrap(),
                        mono,
                        "ram p={p} lane={lane}"
                    );
                    assert_eq!(
                        disk.run_lane(p, 77, lane).unwrap(),
                        mono,
                        "disk p={p} lane={lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_core_batch_and_every_knob_are_byte_invisible() {
        use randcast_graph::shard::{default_scratch_dir, ShardStore, ShardedCsr, SpillSink};
        // Big enough that early rounds (one or two participants per
        // shard) take the sparse row-read path while bulk rounds take
        // full segment views, so both loaders face the equality gate.
        let g = generators::gnp_connected(900, 0.012, &mut rand::rngs::SmallRng::seed_from_u64(21));
        let csr = CsrGraph::from(&g);
        let n = csr.node_count();
        let epoch_len = (n.max(2) as f64).log2().ceil() as usize + 1;
        let plan = ShardPlan::uniform(n, 3);
        for schedule in [
            FastRadioSchedule::Decay { epoch_len },
            FastRadioSchedule::AllInformed,
        ] {
            let fr = FastRadio::new(csr.clone(), g.node(0), 1200, schedule);
            let mono = fr.run_batch(0.3, 91);
            let mut sink = SpillSink::create(default_scratch_dir(), plan.clone()).unwrap();
            for v in 0..n {
                for &t in csr.neighbors_of(v) {
                    if (v as u32) < t {
                        sink.push(v as u64, u64::from(t)).unwrap();
                    }
                }
            }
            let stores = [
                (
                    ShardStore::Ram(ShardedCsr::split(&csr, plan.clone())),
                    "ram",
                ),
                (ShardStore::Disk(sink.finalize().unwrap()), "disk"),
            ];
            for (store, what) in stores {
                let mut radio = ShardedRadio::new(store, 0, 1200, schedule);
                for prefetch in [true, false] {
                    for threads in [1usize, 4] {
                        radio = radio.with_prefetch(prefetch).with_threads(threads);
                        assert_eq!(
                            radio.run_batch(0.3, 91).unwrap(),
                            mono,
                            "{what} batch diverged: {schedule:?} prefetch={prefetch} threads={threads}"
                        );
                        for lane in [0u32, 63] {
                            assert_eq!(
                                radio.run_lane(0.3, 91, lane).unwrap(),
                                mono.lane_outcome(lane),
                                "{what} lane diverged: {schedule:?} prefetch={prefetch} threads={threads} lane={lane}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn silent_models_route_through_the_byte_identical_omission_machinery() {
        let g = generators::grid(6, 6);
        let fr = decay_plan(&g, 2000);
        let model = Omission::new(0.4);
        assert_eq!(fr.run_batch_model(&model, 77), fr.run_batch(0.4, 77));
        for lane in [0u32, 17, 63] {
            assert_eq!(
                fr.run_lane_model(&model, 77, lane),
                fr.run_lane(0.4, 77, lane),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn model_batch_lanes_match_model_lane_replays() {
        use crate::kernel::{FlipFault, LieOrJamFault};
        let graphs = [
            generators::grid(5, 5),
            generators::star(9),
            generators::complete_bipartite(4, 5),
        ];
        for g in &graphs {
            let epoch_len = (g.node_count().max(2) as f64).log2().ceil() as usize + 1;
            let fr = plan(g, 700, FastRadioSchedule::Decay { epoch_len });
            for p in [0.0, 0.3, 0.76] {
                let models: [&dyn FaultModel; 2] = [&FlipFault::new(p), &LieOrJamFault::new(p)];
                for model in models {
                    let batch = fr.run_batch_model(model, 41);
                    for lane in [0u32, 5, 31, 63] {
                        assert_eq!(
                            batch.lane_outcome(lane),
                            fr.run_lane_model(model, 41, lane),
                            "n={} {} p={p} lane={lane}",
                            g.node_count(),
                            model.name()
                        );
                        assert_eq!(
                            batch.completion_round(lane),
                            batch.lane_outcome(lane).completion_round()
                        );
                        assert_eq!(
                            batch.almost_complete_round(lane),
                            batch.lane_outcome(lane).almost_complete_round(),
                            "n={} {} p={p} lane={lane}",
                            g.node_count(),
                            model.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn flip_at_p_zero_matches_the_fault_free_omission_run_exactly() {
        use crate::kernel::FlipFault;
        // With no corruption anywhere, "everyone transmits their (true)
        // value" and "no transmission is ever silenced" are the same
        // process, coin for coin: the decay tapes drive participation
        // and the fault tape is never consulted.
        let g = generators::grid(5, 5);
        let fr = decay_plan(&g, 2000);
        for lane in [0u32, 9, 63] {
            assert_eq!(
                fr.run_lane_model(&FlipFault::new(0.0), 13, lane),
                fr.run_lane(0.0, 13, lane),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn sharded_model_runs_match_monolithic_exactly() {
        use crate::kernel::{CorruptionKind, FlipFault, WorstCasePlacement};
        let g = generators::gnp_connected(100, 0.05, &mut rand::rngs::SmallRng::seed_from_u64(23));
        let csr = CsrGraph::from(&g);
        let fr = FastRadio::new(
            csr.clone(),
            g.node(0),
            600,
            FastRadioSchedule::Decay { epoch_len: 8 },
        );
        let mut placed = WorstCasePlacement::new(0.1, CorruptionKind::Silent);
        fr.preprocess(&mut placed);
        let flip = FlipFault::new(0.3);
        let models: [&dyn FaultModel; 2] = [&placed, &flip];
        for model in models {
            for shards in [1usize, 2, 3, 7] {
                let sp = ShardPlan::uniform(csr.node_count(), shards);
                assert_eq!(
                    fr.run_batch_sharded_model(&sp, model, 7),
                    fr.run_batch_model(model, 7),
                    "{} shards={shards}",
                    model.name()
                );
                for lane in [0u32, 9, 63] {
                    assert_eq!(
                        fr.run_lane_sharded_model(&sp, model, 7, lane),
                        fr.run_lane_model(model, 7, lane),
                        "{} shards={shards} lane={lane}",
                        model.name()
                    );
                }
            }
        }
    }

    #[test]
    fn placed_flip_transmitter_poisons_its_listener() {
        use crate::kernel::{CorruptionKind, WorstCasePlacement};
        // Path 0-1-2: the placed flipping node 1 (the only non-source
        // node of degree 2) delivers the wrong value to node 2, which
        // is then heard-but-wrong: the correct count stays 2. (On a
        // longer path two placed nodes in series would cancel — a flip
        // of a flip restores the value.)
        let g = generators::path(2);
        let fr = decay_plan(&g, 2000);
        let mut flip = WorstCasePlacement::new(0.5, CorruptionKind::Flip);
        fr.preprocess(&mut flip);
        assert!(flip.is_placed(1));
        let out = fr.run_lane_model(&flip, 3, 0);
        assert!(!out.complete());
        assert_eq!(out.informed_count(), 2);
        assert!(out.is_informed(g.node(1)));
        assert!(!out.is_informed(g.node(2)));
    }
}
