//! The paper's failure model: per-(node, step) Bernoulli transmitter
//! faults, classified by severity.

use std::error::Error;
use std::fmt;

use rand::rngs::SmallRng;
use rand::Rng;

/// The three transmission-failure types studied in the paper, in
/// increasing order of adversarial power.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// Node-omission failures (§2.1): a failed node sends nothing during
    /// that step. Received information can always be trusted.
    Omission,
    /// Limited malicious failures (§2.2.2 remark, §3 Theorem 3.2):
    /// transmissions that were *scheduled* may be altered or dropped, but
    /// a failure cannot cause a node to transmit out of turn.
    LimitedMalicious,
    /// Full malicious transmission failures (§2.2): the transmitter
    /// behaves arbitrarily and adaptively, including transmitting in steps
    /// where the algorithm requires silence.
    Malicious,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Omission => "omission",
            FaultKind::LimitedMalicious => "limited-malicious",
            FaultKind::Malicious => "malicious",
        };
        f.write_str(s)
    }
}

/// Error returned when a failure probability is outside `[0, 1)`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct InvalidProbability(
    /// The rejected value.
    pub f64,
);

impl fmt::Display for InvalidProbability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failure probability {} not in [0, 1)", self.0)
    }
}

impl Error for InvalidProbability {}

/// A validated failure probability `p ∈ [0, 1)`.
///
/// The paper requires `p < 1` (with `p = 1` no information ever leaves the
/// source). `p = 0` models the fault-free executions used as baselines.
///
/// # Example
///
/// ```
/// use randcast_engine::FailureProb;
///
/// let p = FailureProb::new(0.3).unwrap();
/// assert_eq!(p.get(), 0.3);
/// assert!(FailureProb::new(1.0).is_err());
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct FailureProb(f64);

impl FailureProb {
    /// Validates `p ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbability`] if `p` is NaN or outside `[0, 1)`.
    pub fn new(p: f64) -> Result<Self, InvalidProbability> {
        if p.is_nan() || !(0.0..1.0).contains(&p) {
            Err(InvalidProbability(p))
        } else {
            Ok(FailureProb(p))
        }
    }

    /// The probability value.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Fault-free (`p = 0`).
    #[must_use]
    pub fn zero() -> Self {
        FailureProb(0.0)
    }
}

impl fmt::Display for FailureProb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Complete fault configuration for an execution: failure type plus
/// per-step failure probability.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultConfig {
    /// The failure type.
    pub kind: FaultKind,
    /// Per-(node, step) failure probability.
    pub p: FailureProb,
}

impl FaultConfig {
    /// Builds a configuration from a raw probability.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbability`] if `p` is outside `[0, 1)`.
    pub fn new(kind: FaultKind, p: f64) -> Result<Self, InvalidProbability> {
        Ok(FaultConfig {
            kind,
            p: FailureProb::new(p)?,
        })
    }

    /// A fault-free configuration (`p = 0`, omission kind — the kind is
    /// irrelevant at `p = 0`).
    #[must_use]
    pub fn fault_free() -> Self {
        FaultConfig {
            kind: FaultKind::Omission,
            p: FailureProb::zero(),
        }
    }

    /// Omission faults with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    #[must_use]
    pub fn omission(p: f64) -> Self {
        FaultConfig::new(FaultKind::Omission, p).expect("invalid probability")
    }

    /// Limited-malicious faults with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    #[must_use]
    pub fn limited_malicious(p: f64) -> Self {
        FaultConfig::new(FaultKind::LimitedMalicious, p).expect("invalid probability")
    }

    /// Malicious faults with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    #[must_use]
    pub fn malicious(p: f64) -> Self {
        FaultConfig::new(FaultKind::Malicious, p).expect("invalid probability")
    }

    /// Samples the set of failed transmitters for one step: `result[v]`
    /// is `true` iff node `v`'s transmitter fails. One independent coin
    /// per node, exactly as in the paper.
    pub fn sample_step(&self, nodes: usize, rng: &mut SmallRng) -> Vec<bool> {
        let mut mask = Vec::with_capacity(nodes);
        self.sample_step_into(nodes, rng, &mut mask);
        mask
    }

    /// Allocation-free variant of [`sample_step`](Self::sample_step):
    /// clears and refills `mask` so per-round engines can reuse one
    /// buffer. Draws the same RNG stream as `sample_step`.
    pub fn sample_step_into(&self, nodes: usize, rng: &mut SmallRng, mask: &mut Vec<bool>) {
        mask.clear();
        let p = self.p.get();
        if p == 0.0 {
            mask.resize(nodes, false);
            return;
        }
        mask.extend((0..nodes).map(|_| rng.gen_bool(p)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn probability_validation() {
        assert!(FailureProb::new(0.0).is_ok());
        assert!(FailureProb::new(0.999).is_ok());
        assert!(FailureProb::new(1.0).is_err());
        assert!(FailureProb::new(-0.1).is_err());
        assert!(FailureProb::new(f64::NAN).is_err());
    }

    #[test]
    fn invalid_probability_display() {
        let e = FailureProb::new(1.5).unwrap_err();
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn fault_free_samples_nothing() {
        let mut rng = SmallRng::seed_from_u64(1);
        let f = FaultConfig::fault_free();
        assert!(f.sample_step(100, &mut rng).iter().all(|&b| !b));
    }

    #[test]
    fn sampling_rate_matches_p() {
        let mut rng = SmallRng::seed_from_u64(2);
        let f = FaultConfig::omission(0.3);
        let mut failures = 0usize;
        let steps = 2000;
        let nodes = 10;
        for _ in 0..steps {
            failures += f
                .sample_step(nodes, &mut rng)
                .iter()
                .filter(|&&b| b)
                .count();
        }
        let rate = failures as f64 / (steps * nodes) as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(FaultConfig::omission(0.1).kind, FaultKind::Omission);
        assert_eq!(
            FaultConfig::limited_malicious(0.1).kind,
            FaultKind::LimitedMalicious
        );
        assert_eq!(FaultConfig::malicious(0.1).kind, FaultKind::Malicious);
    }

    #[test]
    fn kind_display() {
        assert_eq!(FaultKind::Omission.to_string(), "omission");
        assert_eq!(FaultKind::Malicious.to_string(), "malicious");
        assert_eq!(FaultKind::LimitedMalicious.to_string(), "limited-malicious");
    }

    #[test]
    #[should_panic(expected = "invalid probability")]
    fn omission_constructor_panics_on_bad_p() {
        let _ = FaultConfig::omission(2.0);
    }
}
