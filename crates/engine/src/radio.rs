//! The synchronous radio model.
//!
//! A node transmits at most one message per step; the message reaches all
//! neighbors. A node *hears* a message in a step iff it does not transmit
//! itself and **exactly one** of its neighbors transmits. Otherwise —
//! silence or a collision of two or more transmitters — it hears nothing,
//! and cannot distinguish the two cases (no collision detection).
//!
//! Under malicious faults, failed transmitters may transmit out of turn;
//! in this model that is a powerful attack because it *creates
//! collisions*, which is precisely the mechanism behind the paper's
//! radio infeasibility threshold `p ≥ (1 − p)^{Δ+1}` (Theorem 2.4).

use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use randcast_graph::{Graph, NodeId};

use crate::fault::{FaultConfig, FaultKind};

/// What a node does in one radio step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RadioAction<M> {
    /// Stay silent and listen.
    Listen,
    /// Transmit one message to all neighbors.
    Transmit(M),
}

impl<M> RadioAction<M> {
    /// Whether this action transmits.
    #[must_use]
    pub fn is_transmit(&self) -> bool {
        matches!(self, RadioAction::Transmit(_))
    }
}

/// A node automaton in the radio model.
///
/// Each round the engine collects every node's [`act`](RadioNode::act),
/// resolves faults and collisions, then reports the reception outcome to
/// every node via [`recv`](RadioNode::recv) — `None` meaning "silence or
/// collision" (indistinguishable), `Some(msg)` meaning a clean reception.
pub trait RadioNode {
    /// The message type exchanged by this protocol.
    type Msg: Clone + Eq + fmt::Debug;

    /// Decide this round's action.
    fn act(&mut self, round: usize) -> RadioAction<Self::Msg>;

    /// Observe this round's reception outcome.
    fn recv(&mut self, round: usize, heard: Option<Self::Msg>);
}

/// Per-round context handed to a radio adversary.
#[derive(Debug)]
pub struct RadioRoundCtx<'a, M> {
    /// The current round.
    pub round: usize,
    /// The network graph.
    pub graph: &'a Graph,
    /// Nodes whose transmitter failed this round (ascending order).
    pub faulty: &'a [NodeId],
    /// Every node's intended action this round (indexed by node id).
    pub intended: &'a [RadioAction<M>],
}

/// An adaptive adversary controlling maliciously failed transmitters in
/// the radio model.
///
/// Returns replacement actions for (a subset of) this round's faulty
/// nodes; faulty nodes without a replacement stay silent. Under
/// [`FaultKind::LimitedMalicious`] a node that intended to listen is
/// forced to keep listening (no out-of-turn transmissions), while an
/// intended transmission may be altered or suppressed.
pub trait RadioAdversary<M> {
    /// Choose the actual behavior of this round's faulty transmitters.
    fn corrupt_round(
        &mut self,
        ctx: RadioRoundCtx<'_, M>,
        rng: &mut SmallRng,
    ) -> Vec<(NodeId, RadioAction<M>)>;
}

/// The trivial adversary: faulty transmitters stay silent (malicious
/// degrades to omission).
#[derive(Clone, Copy, Debug, Default)]
pub struct SilentRadioAdversary;

impl<M> RadioAdversary<M> for SilentRadioAdversary {
    fn corrupt_round(
        &mut self,
        _ctx: RadioRoundCtx<'_, M>,
        _rng: &mut SmallRng,
    ) -> Vec<(NodeId, RadioAction<M>)> {
        Vec::new()
    }
}

/// Counters accumulated over a radio execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RadioStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Node-steps with an actual transmission.
    pub transmissions: u64,
    /// Clean receptions (exactly one transmitting neighbor, listener
    /// silent).
    pub receptions: u64,
    /// Listener-steps lost to collisions (two or more transmitting
    /// neighbors).
    pub collisions: u64,
    /// Node-steps in which the transmitter failed.
    pub faults: u64,
}

/// A synchronous radio network executing one [`RadioNode`] automaton per
/// graph node.
///
/// # Example
///
/// ```
/// use randcast_engine::radio::{RadioAction, RadioNetwork, RadioNode};
/// use randcast_engine::fault::FaultConfig;
/// use randcast_graph::generators;
///
/// /// Node 0 transmits every round; others listen.
/// struct Beacon {
///     id: usize,
///     heard: usize,
/// }
/// impl RadioNode for Beacon {
///     type Msg = u8;
///     fn act(&mut self, _round: usize) -> RadioAction<u8> {
///         if self.id == 0 {
///             RadioAction::Transmit(7)
///         } else {
///             RadioAction::Listen
///         }
///     }
///     fn recv(&mut self, _round: usize, heard: Option<u8>) {
///         if heard == Some(7) {
///             self.heard += 1;
///         }
///     }
/// }
///
/// let g = generators::star(4);
/// let mut net = RadioNetwork::new(&g, FaultConfig::fault_free(), 0, |v| Beacon {
///     id: v.index(),
///     heard: 0,
/// });
/// net.run(10);
/// // Only the star center (node 0's sole neighbor set) hears it cleanly…
/// // here node 0 *is* the center, so all leaves hear all 10 beacons.
/// for i in 1..=4 {
///     assert_eq!(net.node(g.node(i)).heard, 10);
/// }
/// ```
pub struct RadioNetwork<'g, P: RadioNode, A = SilentRadioAdversary> {
    graph: &'g Graph,
    nodes: Vec<P>,
    fault: FaultConfig,
    adversary: A,
    rng: SmallRng,
    round: usize,
    stats: RadioStats,
}

impl<'g, P: RadioNode> RadioNetwork<'g, P, SilentRadioAdversary> {
    /// Creates a network with the default silent adversary.
    pub fn new<F>(graph: &'g Graph, fault: FaultConfig, seed: u64, factory: F) -> Self
    where
        F: FnMut(NodeId) -> P,
    {
        Self::with_adversary(graph, fault, SilentRadioAdversary, seed, factory)
    }
}

impl<'g, P: RadioNode, A: RadioAdversary<P::Msg>> RadioNetwork<'g, P, A> {
    /// Creates a network with an explicit adversary controlling malicious
    /// faults.
    pub fn with_adversary<F>(
        graph: &'g Graph,
        fault: FaultConfig,
        adversary: A,
        seed: u64,
        mut factory: F,
    ) -> Self
    where
        F: FnMut(NodeId) -> P,
    {
        let nodes = graph.nodes().map(&mut factory).collect();
        RadioNetwork {
            graph,
            nodes,
            fault,
            adversary,
            rng: SmallRng::seed_from_u64(seed),
            round: 0,
            stats: RadioStats::default(),
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The current round (number of completed steps).
    #[must_use]
    pub fn round(&self) -> usize {
        self.round
    }

    /// Execution counters.
    #[must_use]
    pub fn stats(&self) -> RadioStats {
        self.stats
    }

    /// The automaton of node `v`.
    #[must_use]
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v.index()]
    }

    /// Mutable access to the automaton of node `v`.
    pub fn node_mut(&mut self, v: NodeId) -> &mut P {
        &mut self.nodes[v.index()]
    }

    /// Iterates over all automata in node-id order.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// Executes one synchronous round.
    ///
    /// # Panics
    ///
    /// Panics if the adversary returns an action for a non-faulty node.
    pub fn step(&mut self) {
        let n = self.graph.node_count();
        let round = self.round;

        // 1. Collect intended actions.
        let intended: Vec<RadioAction<P::Msg>> =
            self.nodes.iter_mut().map(|p| p.act(round)).collect();

        // 2. Sample transmitter faults.
        let fault_mask = self.fault.sample_step(n, &mut self.rng);
        let faulty: Vec<NodeId> = (0..n).filter(|&i| fault_mask[i]).map(NodeId::new).collect();
        self.stats.faults += faulty.len() as u64;

        // 3. Resolve actual actions of faulty transmitters.
        let mut actual = intended.clone();
        for &v in &faulty {
            actual[v.index()] = RadioAction::Listen;
        }
        if self.fault.kind != FaultKind::Omission && !faulty.is_empty() {
            let ctx = RadioRoundCtx {
                round,
                graph: self.graph,
                faulty: &faulty,
                intended: &intended,
            };
            let overrides = self.adversary.corrupt_round(ctx, &mut self.rng);
            for (v, action) in overrides {
                assert!(
                    fault_mask[v.index()],
                    "adversary tried to control non-faulty node {v}"
                );
                let clamped = if self.fault.kind == FaultKind::LimitedMalicious
                    && !intended[v.index()].is_transmit()
                {
                    RadioAction::Listen // cannot speak out of turn
                } else {
                    action
                };
                actual[v.index()] = clamped;
            }
        }

        // 4. Resolve receptions: a silent node hears the unique
        //    transmitting neighbor, if any; collisions are silence.
        self.stats.transmissions += actual.iter().filter(|a| a.is_transmit()).count() as u64;
        let outcomes: Vec<Option<P::Msg>> = (0..n)
            .map(|i| {
                if actual[i].is_transmit() {
                    return None; // a transmitter hears nothing
                }
                let v = NodeId::new(i);
                let mut heard: Option<&P::Msg> = None;
                let mut count = 0usize;
                for &u in self.graph.neighbors(v) {
                    if let RadioAction::Transmit(m) = &actual[u.index()] {
                        count += 1;
                        heard = Some(m);
                    }
                }
                match count {
                    1 => {
                        self.stats.receptions += 1;
                        heard.cloned()
                    }
                    0 => None,
                    _ => {
                        self.stats.collisions += 1;
                        None
                    }
                }
            })
            .collect();

        for (i, heard) in outcomes.into_iter().enumerate() {
            self.nodes[i].recv(round, heard);
        }

        self.round += 1;
        self.stats.rounds += 1;
    }

    /// Executes `rounds` synchronous rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_graph::generators;

    /// Transmits `msg` on rounds in `when`; records everything heard.
    struct Scripted {
        msg: u8,
        when: Vec<usize>,
        heard: Vec<(usize, Option<u8>)>,
    }

    impl Scripted {
        fn new(msg: u8, when: Vec<usize>) -> Self {
            Scripted {
                msg,
                when,
                heard: Vec::new(),
            }
        }
    }

    impl RadioNode for Scripted {
        type Msg = u8;
        fn act(&mut self, round: usize) -> RadioAction<u8> {
            if self.when.contains(&round) {
                RadioAction::Transmit(self.msg)
            } else {
                RadioAction::Listen
            }
        }
        fn recv(&mut self, round: usize, heard: Option<u8>) {
            self.heard.push((round, heard));
        }
    }

    #[test]
    fn single_transmitter_is_heard() {
        let g = generators::path(2); // 0 - 1 - 2
        let mut net = RadioNetwork::new(&g, FaultConfig::fault_free(), 0, |v| {
            Scripted::new(
                v.index() as u8,
                if v.index() == 0 { vec![0] } else { vec![] },
            )
        });
        net.step();
        assert_eq!(net.node(g.node(1)).heard, vec![(0, Some(0))]);
        assert_eq!(net.node(g.node(2)).heard, vec![(0, None)]); // not a neighbor
        assert_eq!(net.stats().receptions, 1);
    }

    #[test]
    fn collision_is_silence() {
        // 0 and 2 both transmit; 1 (adjacent to both) gets a collision.
        let g = generators::path(2);
        let mut net = RadioNetwork::new(&g, FaultConfig::fault_free(), 0, |v| {
            Scripted::new(
                v.index() as u8,
                if v.index() != 1 { vec![0] } else { vec![] },
            )
        });
        net.step();
        assert_eq!(net.node(g.node(1)).heard, vec![(0, None)]);
        assert_eq!(net.stats().collisions, 1);
    }

    #[test]
    fn transmitter_hears_nothing() {
        // 0 and 1 adjacent, both transmit: each hears nothing even though
        // the other is its unique transmitting neighbor.
        let g = generators::path(1);
        let mut net = RadioNetwork::new(&g, FaultConfig::fault_free(), 0, |v| {
            Scripted::new(v.index() as u8, vec![0])
        });
        net.step();
        assert_eq!(net.node(g.node(0)).heard, vec![(0, None)]);
        assert_eq!(net.node(g.node(1)).heard, vec![(0, None)]);
    }

    #[test]
    fn omission_silences_faulty_transmitter() {
        let g = generators::path(1);
        // p = 0.999…: effectively always faulty; receiver hears nothing.
        let mut net = RadioNetwork::new(&g, FaultConfig::omission(0.99), 1, |v| {
            Scripted::new(
                7,
                if v.index() == 0 {
                    (0..100).collect()
                } else {
                    vec![]
                },
            )
        });
        net.run(100);
        let heard_some = net
            .node(g.node(1))
            .heard
            .iter()
            .filter(|(_, h)| h.is_some())
            .count();
        // ~1% of 100 rounds succeed; allow generous slack but far below 100.
        assert!(heard_some < 20, "heard_some={heard_some}");
    }

    /// Adversary that makes every faulty node transmit garbage (jamming).
    struct Jammer;
    impl RadioAdversary<u8> for Jammer {
        fn corrupt_round(
            &mut self,
            ctx: RadioRoundCtx<'_, u8>,
            _rng: &mut SmallRng,
        ) -> Vec<(NodeId, RadioAction<u8>)> {
            ctx.faulty
                .iter()
                .map(|&v| (v, RadioAction::Transmit(255)))
                .collect()
        }
    }

    #[test]
    fn malicious_jamming_creates_collisions() {
        // Star: center 0 transmits each round; leaves 1..=3 listen. A
        // jamming leaf collides at the center's other... actually leaves
        // are only adjacent to the center, so a jamming leaf collides at
        // the *center* only. To create leaf-side collisions the jammer
        // must be the center — use path 0-1-2: 0 transmits to 1; jamming 2
        // collides at 1.
        let g = generators::path(2);
        let mut net =
            RadioNetwork::with_adversary(&g, FaultConfig::malicious(0.5), Jammer, 9, |v| {
                Scripted::new(
                    1,
                    if v.index() == 0 {
                        (0..200).collect()
                    } else {
                        vec![]
                    },
                )
            });
        net.run(200);
        assert!(
            net.stats().collisions > 10,
            "jammer should collide at node 1: {:?}",
            net.stats()
        );
        // Node 1 must sometimes hear garbage 255 directly (0 faulty+silent,
        // 2 jamming).
        let heard_garbage = net
            .node(g.node(1))
            .heard
            .iter()
            .any(|(_, h)| *h == Some(255));
        assert!(heard_garbage);
    }

    #[test]
    fn limited_malicious_cannot_jam_from_silence() {
        let g = generators::path(2);
        let mut net =
            RadioNetwork::with_adversary(&g, FaultConfig::limited_malicious(0.7), Jammer, 9, |v| {
                Scripted::new(
                    1,
                    if v.index() == 0 {
                        (0..100).collect()
                    } else {
                        vec![]
                    },
                )
            });
        net.run(100);
        // Node 2 never intended to transmit, so no collisions at node 1;
        // node 1's receptions are either Some(1) (0 clean) or Some(255)
        // (0 faulty, corrupted in-turn) or None (0 dropped).
        assert_eq!(net.stats().collisions, 0);
    }

    #[test]
    fn determinism_given_seed() {
        let g = generators::grid(3, 3);
        let run = |seed: u64| {
            let mut net = RadioNetwork::new(&g, FaultConfig::omission(0.3), seed, |v| {
                Scripted::new(v.index() as u8, vec![v.index()])
            });
            net.run(9);
            net.nodes().map(|s| s.heard.clone()).collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn recv_called_every_round_for_every_node() {
        let g = generators::cycle(5);
        let mut net = RadioNetwork::new(&g, FaultConfig::fault_free(), 0, |_| {
            Scripted::new(0, vec![])
        });
        net.run(7);
        for v in g.nodes() {
            assert_eq!(net.node(v).heard.len(), 7);
        }
    }
}
