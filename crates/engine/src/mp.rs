//! The synchronous message-passing model.
//!
//! In each step every node may send arbitrary, possibly different,
//! messages to its neighbors, and receives all messages addressed to it in
//! that step. Failed transmitters are handled per the
//! [`FaultConfig`]: omission faults silence the node
//! for the step; (limited-)malicious faults hand control of the node's
//! transmissions to an [`MpAdversary`].

use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use randcast_graph::{Graph, NodeId};

use crate::fault::{FaultConfig, FaultKind};

/// What a node's transmitter does in one step of the message-passing
/// model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outgoing<M> {
    /// Send nothing.
    Silent,
    /// Send the same message to every neighbor.
    Broadcast(M),
    /// Send (possibly different) messages to the listed neighbors.
    Directed(Vec<(NodeId, M)>),
}

impl<M> Outgoing<M> {
    /// Whether nothing is sent.
    #[must_use]
    pub fn is_silent(&self) -> bool {
        match self {
            Outgoing::Silent => true,
            Outgoing::Broadcast(_) => false,
            Outgoing::Directed(list) => list.is_empty(),
        }
    }
}

/// A node automaton in the message-passing model.
///
/// The engine calls [`send`](MpNode::send) once per round for every node
/// (collecting all intended transmissions before any delivery, so the
/// round is properly synchronous), then delivers messages via
/// [`recv`](MpNode::recv).
pub trait MpNode {
    /// The message type exchanged by this protocol.
    type Msg: Clone + Eq + fmt::Debug;

    /// Decide this round's transmissions.
    fn send(&mut self, round: usize) -> Outgoing<Self::Msg>;

    /// Deliver a message that arrived this round from neighbor `from`.
    fn recv(&mut self, round: usize, from: NodeId, msg: Self::Msg);
}

/// Per-round context handed to a message-passing adversary.
#[derive(Debug)]
pub struct MpRoundCtx<'a, M> {
    /// The current round.
    pub round: usize,
    /// The network graph.
    pub graph: &'a Graph,
    /// Nodes whose transmitter failed this round (ascending order).
    pub faulty: &'a [NodeId],
    /// Every node's intended transmission this round (indexed by node id).
    /// Adaptive adversaries may inspect all of it.
    pub intended: &'a [Outgoing<M>],
}

/// An adaptive adversary controlling maliciously failed transmitters in
/// the message-passing model.
///
/// Once per round the engine reports which transmitters failed and what
/// every node intended to send; the adversary returns replacement
/// behaviors for (a subset of) the faulty nodes. Faulty nodes without a
/// replacement stay silent.
///
/// Under [`FaultKind::LimitedMalicious`] the engine clamps replacements
/// so a faulty node can only reach targets it intended to reach (content
/// may be corrupted, messages may be dropped — but no out-of-turn links).
pub trait MpAdversary<M> {
    /// Choose the actual behavior of this round's faulty transmitters.
    fn corrupt_round(
        &mut self,
        ctx: MpRoundCtx<'_, M>,
        rng: &mut SmallRng,
    ) -> Vec<(NodeId, Outgoing<M>)>;
}

/// The trivial adversary: faulty nodes stay silent. Under malicious fault
/// kinds this makes malicious behave exactly like omission — useful as a
/// baseline and as the default for omission-only experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct SilentMpAdversary;

impl<M> MpAdversary<M> for SilentMpAdversary {
    fn corrupt_round(
        &mut self,
        _ctx: MpRoundCtx<'_, M>,
        _rng: &mut SmallRng,
    ) -> Vec<(NodeId, Outgoing<M>)> {
        Vec::new()
    }
}

/// Counters accumulated over an execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MpStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Node-steps in which a (post-fault) transmission occurred.
    pub transmissions: u64,
    /// Point-to-point messages delivered.
    pub deliveries: u64,
    /// Node-steps in which the transmitter failed.
    pub faults: u64,
}

/// A synchronous message-passing network executing one [`MpNode`] automaton
/// per graph node.
///
/// See the [crate-level example](crate) for basic usage.
pub struct MpNetwork<'g, P: MpNode, A = SilentMpAdversary> {
    graph: &'g Graph,
    nodes: Vec<P>,
    fault: FaultConfig,
    adversary: A,
    rng: SmallRng,
    round: usize,
    stats: MpStats,
    // Reusable per-step scratch buffers. Cleared and refilled every
    // round so the steady-state delivery path allocates nothing beyond
    // what the automata themselves hand out.
    intended: Vec<Outgoing<P::Msg>>,
    fault_mask: Vec<bool>,
    faulty: Vec<NodeId>,
    overrides: Vec<(NodeId, Outgoing<P::Msg>)>,
}

impl<'g, P: MpNode> MpNetwork<'g, P, SilentMpAdversary> {
    /// Creates a network with the default silent adversary (sufficient for
    /// fault-free and omission executions).
    ///
    /// `factory(v)` builds the automaton for node `v`.
    pub fn new<F>(graph: &'g Graph, fault: FaultConfig, seed: u64, factory: F) -> Self
    where
        F: FnMut(NodeId) -> P,
    {
        Self::with_adversary(graph, fault, SilentMpAdversary, seed, factory)
    }
}

impl<'g, P: MpNode, A: MpAdversary<P::Msg>> MpNetwork<'g, P, A> {
    /// Creates a network with an explicit adversary controlling malicious
    /// faults.
    pub fn with_adversary<F>(
        graph: &'g Graph,
        fault: FaultConfig,
        adversary: A,
        seed: u64,
        mut factory: F,
    ) -> Self
    where
        F: FnMut(NodeId) -> P,
    {
        let nodes: Vec<P> = graph.nodes().map(&mut factory).collect();
        let n = nodes.len();
        MpNetwork {
            graph,
            nodes,
            fault,
            adversary,
            rng: SmallRng::seed_from_u64(seed),
            round: 0,
            stats: MpStats::default(),
            intended: Vec::with_capacity(n),
            fault_mask: Vec::with_capacity(n),
            faulty: Vec::new(),
            overrides: Vec::new(),
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The current round (number of completed steps).
    #[must_use]
    pub fn round(&self) -> usize {
        self.round
    }

    /// Execution counters.
    #[must_use]
    pub fn stats(&self) -> MpStats {
        self.stats
    }

    /// The automaton of node `v`.
    #[must_use]
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v.index()]
    }

    /// Mutable access to the automaton of node `v`.
    pub fn node_mut(&mut self, v: NodeId) -> &mut P {
        &mut self.nodes[v.index()]
    }

    /// Iterates over all automata in node-id order.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// Executes one synchronous round.
    ///
    /// # Panics
    ///
    /// Panics if the adversary returns a replacement for a non-faulty
    /// node, or if any transmission targets a non-neighbor.
    pub fn step(&mut self) {
        let n = self.graph.node_count();
        let round = self.round;

        // 1. Collect intentions (into the reusable buffer).
        self.intended.clear();
        for node in &mut self.nodes {
            self.intended.push(node.send(round));
        }

        // 2. Sample transmitter faults (one coin per node).
        self.fault
            .sample_step_into(n, &mut self.rng, &mut self.fault_mask);
        self.faulty.clear();
        self.faulty
            .extend((0..n).filter(|&i| self.fault_mask[i]).map(NodeId::new));
        self.stats.faults += self.faulty.len() as u64;

        // 3. Resolve actual behavior of faulty transmitters. Faulty
        //    nodes are silent unless the adversary supplies a
        //    replacement; replacements are kept in a sorted side table
        //    (last one per node wins) instead of cloning the whole
        //    intention vector.
        self.overrides.clear();
        if self.fault.kind != FaultKind::Omission && !self.faulty.is_empty() {
            let ctx = MpRoundCtx {
                round,
                graph: self.graph,
                faulty: &self.faulty,
                intended: &self.intended,
            };
            let replacements = self.adversary.corrupt_round(ctx, &mut self.rng);
            for (v, behavior) in replacements {
                assert!(
                    self.fault_mask[v.index()],
                    "adversary tried to control non-faulty node {v}"
                );
                let behavior = if self.fault.kind == FaultKind::LimitedMalicious {
                    clamp_to_intended(self.graph, v, &self.intended[v.index()], behavior)
                } else {
                    behavior
                };
                self.overrides.push((v, behavior));
            }
            self.overrides.sort_by_key(|&(v, _)| v);
            self.overrides.dedup_by(|later, earlier| {
                if later.0 == earlier.0 {
                    // Keep the later replacement, matching sequential
                    // overwrite semantics.
                    std::mem::swap(later, earlier);
                    true
                } else {
                    false
                }
            });
        }

        // 4. Deliver, in deterministic (sender, target) order.
        let graph = self.graph;
        for u in graph.nodes() {
            let out = if self.fault_mask[u.index()] {
                match self.overrides.binary_search_by_key(&u, |&(v, _)| v) {
                    Ok(i) => std::mem::replace(&mut self.overrides[i].1, Outgoing::Silent),
                    Err(_) => Outgoing::Silent,
                }
            } else {
                std::mem::replace(&mut self.intended[u.index()], Outgoing::Silent)
            };
            match out {
                Outgoing::Silent => {}
                Outgoing::Broadcast(m) => {
                    self.stats.transmissions += 1;
                    for &v in graph.neighbors(u) {
                        self.stats.deliveries += 1;
                        self.nodes[v.index()].recv(round, u, m.clone());
                    }
                }
                Outgoing::Directed(mut list) => {
                    if list.is_empty() {
                        continue;
                    }
                    self.stats.transmissions += 1;
                    // Deliver in ascending-target order with last-wins
                    // duplicate handling, in place (no per-node map).
                    list.sort_by_key(|&(v, _)| v);
                    list.dedup_by(|later, earlier| {
                        if later.0 == earlier.0 {
                            std::mem::swap(later, earlier);
                            true
                        } else {
                            false
                        }
                    });
                    for (v, m) in list {
                        assert!(graph.has_edge(u, v), "node {u} sent to non-neighbor {v}");
                        self.stats.deliveries += 1;
                        self.nodes[v.index()].recv(round, u, m);
                    }
                }
            }
        }

        self.round += 1;
        self.stats.rounds += 1;
    }

    /// Executes `rounds` synchronous rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }
}

/// Enforces the limited-malicious containment rule: the actual behavior
/// may only reach targets the intended behavior reached (with arbitrary
/// content), and may drop any of them.
fn clamp_to_intended<M: Clone>(
    graph: &Graph,
    v: NodeId,
    intended: &Outgoing<M>,
    actual: Outgoing<M>,
) -> Outgoing<M> {
    let allowed: Vec<NodeId> = match intended {
        Outgoing::Silent => Vec::new(),
        Outgoing::Broadcast(_) => graph.neighbors(v).to_vec(),
        Outgoing::Directed(list) => list.iter().map(|&(t, _)| t).collect(),
    };
    if allowed.is_empty() {
        return Outgoing::Silent;
    }
    match actual {
        Outgoing::Silent => Outgoing::Silent,
        Outgoing::Broadcast(m) => {
            if allowed.len() == graph.degree(v) {
                Outgoing::Broadcast(m)
            } else {
                Outgoing::Directed(allowed.into_iter().map(|t| (t, m.clone())).collect())
            }
        }
        Outgoing::Directed(list) => Outgoing::Directed(
            list.into_iter()
                .filter(|(t, _)| allowed.contains(t))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use randcast_graph::generators;

    /// Floods `true` once informed; counts received messages.
    struct Flood {
        informed: bool,
        received: usize,
    }

    impl Flood {
        fn new(informed: bool) -> Self {
            Flood {
                informed,
                received: 0,
            }
        }
    }

    impl MpNode for Flood {
        type Msg = bool;
        fn send(&mut self, _round: usize) -> Outgoing<bool> {
            if self.informed {
                Outgoing::Broadcast(true)
            } else {
                Outgoing::Silent
            }
        }
        fn recv(&mut self, _round: usize, _from: NodeId, _msg: bool) {
            self.informed = true;
            self.received += 1;
        }
    }

    #[test]
    fn fault_free_flood_advances_one_hop_per_round() {
        let g = generators::path(5);
        let mut net = MpNetwork::new(&g, FaultConfig::fault_free(), 0, |v| {
            Flood::new(v.index() == 0)
        });
        for t in 1..=5 {
            net.step();
            let frontier = (0..=5).filter(|&i| net.node(g.node(i)).informed).count();
            assert_eq!(frontier, t + 1, "after round {t}");
        }
    }

    #[test]
    fn omission_p_half_still_completes_eventually() {
        let g = generators::path(8);
        let mut net = MpNetwork::new(&g, FaultConfig::omission(0.5), 42, |v| {
            Flood::new(v.index() == 0)
        });
        net.run(200);
        assert!(net.nodes().all(|n| n.informed));
    }

    #[test]
    fn determinism_given_seed() {
        let g = generators::grid(4, 4);
        let run = |seed: u64| {
            let mut net = MpNetwork::new(&g, FaultConfig::omission(0.4), seed, |v| {
                Flood::new(v.index() == 0)
            });
            net.run(30);
            net.nodes().map(|n| n.received).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7),
            run(8),
            "different seeds should (generically) differ"
        );
    }

    #[test]
    fn stats_count_deliveries() {
        let g = generators::star(3);
        let mut net = MpNetwork::new(&g, FaultConfig::fault_free(), 0, |v| {
            Flood::new(v.index() == 0)
        });
        net.step(); // center broadcasts to 3 leaves
        let s = net.stats();
        assert_eq!(s.rounds, 1);
        assert_eq!(s.transmissions, 1);
        assert_eq!(s.deliveries, 3);
        assert_eq!(s.faults, 0);
    }

    /// Sends one directed message from node 0 to node 1 in round 0.
    struct OneShot {
        me: NodeId,
        inbox: Vec<(NodeId, u64)>,
    }

    impl MpNode for OneShot {
        type Msg = u64;
        fn send(&mut self, round: usize) -> Outgoing<u64> {
            if round == 0 && self.me.index() == 0 {
                Outgoing::Directed(vec![(NodeId::new(1), 99)])
            } else {
                Outgoing::Silent
            }
        }
        fn recv(&mut self, _round: usize, from: NodeId, msg: u64) {
            self.inbox.push((from, msg));
        }
    }

    #[test]
    fn directed_delivery_reaches_only_target() {
        let g = generators::path(2); // 0 - 1 - 2
        let mut net = MpNetwork::new(&g, FaultConfig::fault_free(), 0, |v| OneShot {
            me: v,
            inbox: Vec::new(),
        });
        net.step();
        assert_eq!(net.node(g.node(1)).inbox, vec![(g.node(0), 99)]);
        assert!(net.node(g.node(2)).inbox.is_empty());
        assert!(net.node(g.node(0)).inbox.is_empty());
    }

    #[test]
    fn duplicate_directed_targets_keep_last_message() {
        struct Dup {
            me: NodeId,
            inbox: Vec<(NodeId, u64)>,
        }
        impl MpNode for Dup {
            type Msg = u64;
            fn send(&mut self, round: usize) -> Outgoing<u64> {
                if round == 0 && self.me.index() == 0 {
                    Outgoing::Directed(vec![
                        (NodeId::new(1), 1),
                        (NodeId::new(1), 2),
                        (NodeId::new(1), 3),
                    ])
                } else {
                    Outgoing::Silent
                }
            }
            fn recv(&mut self, _round: usize, from: NodeId, msg: u64) {
                self.inbox.push((from, msg));
            }
        }
        let g = generators::path(1);
        let mut net = MpNetwork::new(&g, FaultConfig::fault_free(), 0, |v| Dup {
            me: v,
            inbox: Vec::new(),
        });
        net.step();
        // Map semantics: one delivery per target, last message wins.
        assert_eq!(net.node(g.node(1)).inbox, vec![(g.node(0), 3)]);
        assert_eq!(net.stats().deliveries, 1);
    }

    /// Adversary that rebroadcasts `false` from every faulty node.
    struct LiarAdversary;
    impl MpAdversary<bool> for LiarAdversary {
        fn corrupt_round(
            &mut self,
            ctx: MpRoundCtx<'_, bool>,
            _rng: &mut SmallRng,
        ) -> Vec<(NodeId, Outgoing<bool>)> {
            ctx.faulty
                .iter()
                .map(|&v| (v, Outgoing::Broadcast(false)))
                .collect()
        }
    }

    #[test]
    fn malicious_adversary_can_speak_out_of_turn() {
        // Node 1 never intends to send, but when faulty the liar makes it
        // broadcast `false` (allowed under full malicious).
        struct Quiet {
            heard: Vec<bool>,
        }
        impl MpNode for Quiet {
            type Msg = bool;
            fn send(&mut self, _round: usize) -> Outgoing<bool> {
                Outgoing::Silent
            }
            fn recv(&mut self, _round: usize, _from: NodeId, msg: bool) {
                self.heard.push(msg);
            }
        }
        let g = generators::path(1);
        // p = 0.9: node 1 fails most rounds.
        let mut net =
            MpNetwork::with_adversary(&g, FaultConfig::malicious(0.9), LiarAdversary, 3, |_| {
                Quiet { heard: Vec::new() }
            });
        net.run(50);
        assert!(
            !net.node(g.node(0)).heard.is_empty(),
            "liar should have spoken out of turn"
        );
        assert!(net.node(g.node(0)).heard.iter().all(|&b| !b));
    }

    #[test]
    fn limited_malicious_cannot_speak_out_of_turn() {
        struct Quiet {
            heard: Vec<bool>,
        }
        impl MpNode for Quiet {
            type Msg = bool;
            fn send(&mut self, _round: usize) -> Outgoing<bool> {
                Outgoing::Silent
            }
            fn recv(&mut self, _round: usize, _from: NodeId, msg: bool) {
                self.heard.push(msg);
            }
        }
        let g = generators::path(1);
        let mut net = MpNetwork::with_adversary(
            &g,
            FaultConfig::limited_malicious(0.9),
            LiarAdversary,
            3,
            |_| Quiet { heard: Vec::new() },
        );
        net.run(50);
        assert!(
            net.node(g.node(0)).heard.is_empty(),
            "limited malicious must not create out-of-turn transmissions"
        );
    }

    #[test]
    fn limited_malicious_can_corrupt_intended_sends() {
        struct Talker {
            me: NodeId,
            heard: Vec<bool>,
        }
        impl MpNode for Talker {
            type Msg = bool;
            fn send(&mut self, _round: usize) -> Outgoing<bool> {
                if self.me.index() == 0 {
                    Outgoing::Broadcast(true)
                } else {
                    Outgoing::Silent
                }
            }
            fn recv(&mut self, _round: usize, _from: NodeId, msg: bool) {
                self.heard.push(msg);
            }
        }
        let g = generators::path(1);
        let mut net = MpNetwork::with_adversary(
            &g,
            FaultConfig::limited_malicious(0.5),
            LiarAdversary,
            11,
            |v| Talker {
                me: v,
                heard: Vec::new(),
            },
        );
        net.run(100);
        let heard = &net.node(g.node(1)).heard;
        assert!(heard.contains(&true), "fault-free rounds deliver the truth");
        assert!(heard.contains(&false), "faulty rounds deliver the lie");
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn directed_send_to_non_neighbor_panics() {
        struct Bad;
        impl MpNode for Bad {
            type Msg = bool;
            fn send(&mut self, _round: usize) -> Outgoing<bool> {
                Outgoing::Directed(vec![(NodeId::new(2), true)])
            }
            fn recv(&mut self, _round: usize, _from: NodeId, _msg: bool) {}
        }
        let g = generators::path(2); // 0-1-2: 0 and 2 are not adjacent
        let mut net = MpNetwork::new(&g, FaultConfig::fault_free(), 0, |_| Bad);
        net.step();
    }

    #[test]
    fn empty_directed_counts_as_silent() {
        struct Empty;
        impl MpNode for Empty {
            type Msg = bool;
            fn send(&mut self, _round: usize) -> Outgoing<bool> {
                Outgoing::Directed(Vec::new())
            }
            fn recv(&mut self, _round: usize, _from: NodeId, _msg: bool) {}
        }
        let g = generators::path(1);
        let mut net = MpNetwork::new(&g, FaultConfig::fault_free(), 0, |_| Empty);
        net.run(5);
        assert_eq!(net.stats().transmissions, 0);
        assert_eq!(net.stats().deliveries, 0);
        assert!(Outgoing::<bool>::Directed(Vec::new()).is_silent());
        assert!(Outgoing::<bool>::Silent.is_silent());
        assert!(!Outgoing::Broadcast(true).is_silent());
    }

    /// Adversary that only overrides the lowest-id faulty node; the rest
    /// must default to silence.
    struct PartialAdversary;
    impl MpAdversary<bool> for PartialAdversary {
        fn corrupt_round(
            &mut self,
            ctx: MpRoundCtx<'_, bool>,
            _rng: &mut SmallRng,
        ) -> Vec<(NodeId, Outgoing<bool>)> {
            ctx.faulty
                .first()
                .map(|&v| (v, Outgoing::Broadcast(false)))
                .into_iter()
                .collect()
        }
    }

    #[test]
    fn unoverridden_faulty_nodes_stay_silent() {
        struct Count {
            heard: usize,
        }
        impl MpNode for Count {
            type Msg = bool;
            fn send(&mut self, _round: usize) -> Outgoing<bool> {
                Outgoing::Silent
            }
            fn recv(&mut self, _round: usize, _from: NodeId, msg: bool) {
                assert!(!msg, "only the adversary's false broadcasts exist");
                self.heard += 1;
            }
        }
        // Complete graph: every fault is observable if it speaks.
        let g = generators::complete(4);
        let mut net = MpNetwork::with_adversary(
            &g,
            FaultConfig::malicious(0.5),
            PartialAdversary,
            11,
            |_| Count { heard: 0 },
        );
        net.run(100);
        // Each round at most one (the overridden) node broadcasts to its
        // 3 neighbors: deliveries ≤ 300.
        assert!(net.stats().deliveries <= 300);
        assert!(net.stats().deliveries > 0);
    }

    #[test]
    fn fault_rate_is_sampled_per_node_step() {
        let g = generators::complete(4);
        let mut net = MpNetwork::new(&g, FaultConfig::omission(0.25), 5, |v| {
            Flood::new(v.index() == 0)
        });
        net.run(500);
        let s = net.stats();
        let rate = s.faults as f64 / (500.0 * 4.0);
        assert!((rate - 0.25).abs() < 0.05, "rate={rate}");
    }
}
