//! Property-based tests for the simulation engines: model semantics that
//! must hold for *every* graph, seed, and failure probability.

use proptest::prelude::*;
use rand::rngs::SmallRng;

use randcast_engine::fault::FaultConfig;
use randcast_engine::flood_fast::{FastFlood, FastFloodVariant};
use randcast_engine::kernel::{BatchBernoulli, BatchTape, FAULT_STREAM, LANES};
use randcast_engine::mp::{MpAdversary, MpNetwork, MpNode, MpRoundCtx, Outgoing};
use randcast_engine::radio::{RadioAction, RadioAdversary, RadioNetwork, RadioNode, RadioRoundCtx};
use randcast_engine::radio_fast::{FastRadio, FastRadioSchedule};
use randcast_engine::simple_fast::FastSimple;
use randcast_graph::{CsrGraph, Graph, GraphBuilder, NodeId};

fn connected_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..20,
        proptest::collection::vec((0usize..20, 0usize..20), 0..30),
    )
        .prop_map(|(n, extra)| {
            let mut b = GraphBuilder::new(n);
            for v in 1..n {
                b.edge((v * 5 + 1) % v, v);
            }
            for (u, v) in extra {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.edge(u, v);
                }
            }
            b.finish().expect("valid construction")
        })
}

/// Flooding automaton recording when it was informed.
struct Flood {
    informed_at: Option<usize>,
}

impl MpNode for Flood {
    type Msg = bool;
    fn send(&mut self, _round: usize) -> Outgoing<bool> {
        if self.informed_at.is_some() {
            Outgoing::Broadcast(true)
        } else {
            Outgoing::Silent
        }
    }
    fn recv(&mut self, round: usize, _from: NodeId, _msg: bool) {
        if self.informed_at.is_none() {
            self.informed_at = Some(round);
        }
    }
}

/// Radio automaton: transmits on a fixed round, records everything heard.
struct Script {
    transmit_round: Option<usize>,
    heard: Vec<Option<u8>>,
}

impl RadioNode for Script {
    type Msg = u8;
    fn act(&mut self, round: usize) -> RadioAction<u8> {
        if self.transmit_round == Some(round) {
            RadioAction::Transmit(7)
        } else {
            RadioAction::Listen
        }
    }
    fn recv(&mut self, _round: usize, heard: Option<u8>) {
        self.heard.push(heard);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mp_execution_is_deterministic(
        g in connected_graph(),
        p in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut net = MpNetwork::new(&g, FaultConfig::omission(p), seed, |v| Flood {
                informed_at: (v.index() == 0).then_some(0),
            });
            net.run(12);
            (g.nodes().map(|v| net.node(v).informed_at).collect::<Vec<_>>(), net.stats())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn mp_fault_free_floods_by_distance(g in connected_graph()) {
        let mut net = MpNetwork::new(&g, FaultConfig::fault_free(), 0, |v| Flood {
            informed_at: (v.index() == 0).then_some(0),
        });
        net.run(g.node_count());
        let dist = randcast_graph::traversal::bfs_distances(&g, g.node(0));
        for v in g.nodes() {
            // recv at round r means informed at distance r+1; node at
            // distance d is informed at round d-1.
            let expect = if v.index() == 0 { 0 } else { dist[v.index()] - 1 };
            prop_assert_eq!(net.node(v).informed_at, Some(expect));
        }
    }

    #[test]
    fn mp_omission_never_corrupts_content(
        g in connected_graph(),
        p in 0.0f64..0.95,
        seed in any::<u64>(),
    ) {
        // Under omission faults every delivered message is genuine: the
        // flood only ever sends `true`, so nothing else can arrive —
        // completion is the only observable difference.
        struct Check {
            informed_at: Option<usize>,
        }
        impl MpNode for Check {
            type Msg = bool;
            fn send(&mut self, _round: usize) -> Outgoing<bool> {
                if self.informed_at.is_some() {
                    Outgoing::Broadcast(true)
                } else {
                    Outgoing::Silent
                }
            }
            fn recv(&mut self, round: usize, _from: NodeId, msg: bool) {
                assert!(msg, "omission faults must not alter content");
                if self.informed_at.is_none() {
                    self.informed_at = Some(round);
                }
            }
        }
        let mut net = MpNetwork::new(&g, FaultConfig::omission(p), seed, |v| Check {
            informed_at: (v.index() == 0).then_some(0),
        });
        net.run(20);
    }

    #[test]
    fn radio_reception_rule_is_exact(
        g in connected_graph(),
        transmitters in proptest::collection::vec(0usize..20, 1..6),
    ) {
        // All chosen transmitters fire in round 0; fault-free. Verify the
        // exact reception predicate for every node.
        let tx: Vec<usize> = transmitters.iter().map(|t| t % g.node_count()).collect();
        let mut net = RadioNetwork::new(&g, FaultConfig::fault_free(), 0, |v| Script {
            transmit_round: tx.contains(&v.index()).then_some(0),
            heard: Vec::new(),
        });
        net.step();
        for v in g.nodes() {
            let transmitting = tx.contains(&v.index());
            let tx_neighbors = g
                .neighbors(v)
                .iter()
                .filter(|u| tx.contains(&u.index()))
                .count();
            let expect = if !transmitting && tx_neighbors == 1 {
                Some(7u8)
            } else {
                None
            };
            prop_assert_eq!(net.node(v).heard[0], expect, "node {}", v);
        }
    }

    #[test]
    fn radio_execution_is_deterministic(
        g in connected_graph(),
        p in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut net = RadioNetwork::new(&g, FaultConfig::omission(p), seed, |v| Script {
                transmit_round: Some(v.index() % 5),
                heard: Vec::new(),
            });
            net.run(5);
            g.nodes().map(|v| net.node(v).heard.clone()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn limited_malicious_never_speaks_out_of_turn_mp(
        g in connected_graph(),
        p in 0.1f64..0.95,
        seed in any::<u64>(),
    ) {
        // An adversary that tries to broadcast from every faulty node.
        struct Loud;
        impl MpAdversary<bool> for Loud {
            fn corrupt_round(
                &mut self,
                ctx: MpRoundCtx<'_, bool>,
                _rng: &mut SmallRng,
            ) -> Vec<(NodeId, Outgoing<bool>)> {
                ctx.faulty
                    .iter()
                    .map(|&v| (v, Outgoing::Broadcast(false)))
                    .collect()
            }
        }
        // Nobody ever intends to send, so nobody may ever receive.
        struct Mute {
            got: usize,
        }
        impl MpNode for Mute {
            type Msg = bool;
            fn send(&mut self, _round: usize) -> Outgoing<bool> {
                Outgoing::Silent
            }
            fn recv(&mut self, _round: usize, _from: NodeId, _msg: bool) {
                self.got += 1;
            }
        }
        let mut net = MpNetwork::with_adversary(
            &g,
            FaultConfig::limited_malicious(p),
            Loud,
            seed,
            |_| Mute { got: 0 },
        );
        net.run(15);
        for v in g.nodes() {
            prop_assert_eq!(net.node(v).got, 0);
        }
    }

    #[test]
    fn limited_malicious_never_speaks_out_of_turn_radio(
        g in connected_graph(),
        p in 0.1f64..0.95,
        seed in any::<u64>(),
    ) {
        struct LoudR;
        impl RadioAdversary<u8> for LoudR {
            fn corrupt_round(
                &mut self,
                ctx: RadioRoundCtx<'_, u8>,
                _rng: &mut SmallRng,
            ) -> Vec<(NodeId, RadioAction<u8>)> {
                ctx.faulty
                    .iter()
                    .map(|&v| (v, RadioAction::Transmit(9)))
                    .collect()
            }
        }
        let mut net = RadioNetwork::with_adversary(
            &g,
            FaultConfig::limited_malicious(p),
            LoudR,
            seed,
            |_| Script {
                transmit_round: None,
                heard: Vec::new(),
            },
        );
        net.run(15);
        prop_assert_eq!(net.stats().transmissions, 0);
        for v in g.nodes() {
            prop_assert!(net.node(v).heard.iter().all(Option::is_none));
        }
    }

    #[test]
    fn p_zero_malicious_equals_fault_free(
        g in connected_graph(),
        seed in any::<u64>(),
    ) {
        // With p = 0 the adversary is never consulted: executions under
        // any fault kind coincide with the fault-free reference.
        let run = |fault: FaultConfig| {
            let mut net = MpNetwork::new(&g, fault, seed, |v| Flood {
                informed_at: (v.index() == 0).then_some(0),
            });
            net.run(10);
            g.nodes().map(|v| net.node(v).informed_at).collect::<Vec<_>>()
        };
        let reference = run(FaultConfig::fault_free());
        prop_assert_eq!(run(FaultConfig::malicious(0.0)), reference.clone());
        prop_assert_eq!(run(FaultConfig::limited_malicious(0.0)), reference);
    }

    #[test]
    fn fast_flood_informed_set_is_monotone(
        g in connected_graph(),
        p in 0.0f64..0.95,
        seed in any::<u64>(),
        tree in any::<bool>(),
    ) {
        let variant = if tree {
            FastFloodVariant::Tree
        } else {
            FastFloodVariant::Graph
        };
        let ff = FastFlood::new(CsrGraph::from(&g), g.node(0), 4 * g.node_count() + 40, variant);
        let out = ff.run(p, seed);
        let counts = out.informed_by_round();
        prop_assert_eq!(counts[0], 1);
        prop_assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*counts.last().unwrap(), out.informed_count());
        prop_assert!(out.informed_count() <= g.node_count());
        // The informed bitset agrees with the count.
        let set_bits = g.nodes().filter(|&v| out.is_informed(v)).count();
        prop_assert_eq!(set_bits, out.informed_count());
        prop_assert!(out.is_informed(g.node(0)));
    }

    #[test]
    fn fast_flood_p_zero_completes_in_eccentricity_rounds(
        g in connected_graph(),
        seed in any::<u64>(),
    ) {
        let d = randcast_graph::traversal::radius_from(&g, g.node(0));
        for variant in [FastFloodVariant::Tree, FastFloodVariant::Graph] {
            let ff = FastFlood::new(CsrGraph::from(&g), g.node(0), g.node_count() + 1, variant);
            let out = ff.run(0.0, seed);
            prop_assert_eq!(out.completion_round(), Some(d));
            prop_assert!((out.informed_fraction() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fast_flood_is_deterministic_per_seed(
        g in connected_graph(),
        p in 0.0f64..0.95,
        seed in any::<u64>(),
    ) {
        let ff = FastFlood::new(CsrGraph::from(&g), g.node(0), 50, FastFloodVariant::Graph);
        prop_assert_eq!(ff.run(p, seed), ff.run(p, seed));
    }

    #[test]
    fn fast_radio_informed_set_is_monotone(
        g in connected_graph(),
        p in 0.0f64..0.95,
        seed in any::<u64>(),
        decay in any::<bool>(),
    ) {
        let schedule = if decay {
            let epoch_len = (g.node_count() as f64).log2().ceil() as usize + 1;
            FastRadioSchedule::Decay { epoch_len }
        } else {
            FastRadioSchedule::AllInformed
        };
        let plan = FastRadio::new(CsrGraph::from(&g), g.node(0), 30 * g.node_count() + 60, schedule);
        let out = plan.run(p, seed);
        let counts = out.informed_by_round();
        prop_assert_eq!(counts[0], 1);
        prop_assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*counts.last().unwrap(), out.informed_count());
        prop_assert!(out.informed_count() <= g.node_count());
        // The informed bitset agrees with the count, and a completion
        // claim agrees with the curve.
        let set_bits = g.nodes().filter(|&v| out.is_informed(v)).count();
        prop_assert_eq!(set_bits, out.informed_count());
        prop_assert!(out.is_informed(g.node(0)));
        if let Some(t) = out.completion_round() {
            prop_assert_eq!(out.round_reaching(g.node_count()), Some(t));
        }
    }

    #[test]
    fn fast_radio_is_deterministic_per_seed(
        g in connected_graph(),
        p in 0.0f64..0.95,
        seed in any::<u64>(),
        decay in any::<bool>(),
    ) {
        let schedule = if decay {
            FastRadioSchedule::Decay { epoch_len: 5 }
        } else {
            FastRadioSchedule::AllInformed
        };
        let plan = FastRadio::new(CsrGraph::from(&g), g.node(0), 60, schedule);
        prop_assert_eq!(plan.run(p, seed), plan.run(p, seed));
    }

    #[test]
    fn fast_simple_is_deterministic_per_seed(
        g in connected_graph(),
        p in 0.0f64..0.95,
        seed in any::<u64>(),
        m in 1usize..6,
    ) {
        let fs = FastSimple::new(&CsrGraph::from(&g), g.node(0), m);
        let out = fs.run(p, seed);
        prop_assert_eq!(&out, &fs.run(p, seed));
        // The correct bitset always agrees with the count, and the
        // source is always correct.
        let set_bits = g.nodes().filter(|&v| out.is_correct(v)).count();
        prop_assert_eq!(set_bits, out.correct_count());
        prop_assert!(out.is_correct(g.node(0)));
    }

    #[test]
    fn fast_simple_p_zero_completes_in_exactly_total_rounds(
        g in connected_graph(),
        seed in any::<u64>(),
        m in 1usize..6,
    ) {
        // Simple is a fixed-length schedule: at p = 0 the broadcast is
        // fully correct and completes in exactly n · m rounds.
        let fs = FastSimple::new(&CsrGraph::from(&g), g.node(0), m);
        let out = fs.run(0.0, seed);
        prop_assert!(out.complete());
        prop_assert_eq!(out.total_rounds(), g.node_count() * m);
        prop_assert_eq!(out.completion_round(), Some(g.node_count() * m));
        prop_assert!((out.correct_fraction() - 1.0).abs() < 1e-12);
        prop_assert!(out.last_adoption_round() <= out.total_rounds());
    }

    #[test]
    fn fast_simple_correct_count_is_monotone_in_p(
        g in connected_graph(),
        seed in any::<u64>(),
        m in 1usize..5,
    ) {
        // The per-(seed, node) uniform is mapped monotonically through
        // p, so the correct set can only shrink as p grows.
        let fs = FastSimple::new(&CsrGraph::from(&g), g.node(0), m);
        let mut prev = usize::MAX;
        for p in [0.0, 0.15, 0.35, 0.55, 0.75, 0.9, 0.99] {
            let c = fs.run(p, seed).correct_count();
            prop_assert!(c <= prev, "p={}: {} > {}", p, c, prev);
            prev = c;
        }
    }

    #[test]
    fn batch_fault_masks_match_lane_draws_bit_for_bit(
        block_seed in any::<u64>(),
        p in 0.0f64..1.0,
        sites in proptest::collection::vec(any::<u64>(), 1..16),
    ) {
        // The whole-word coin draws and the per-lane scalar draws read
        // the same tape words, so bit k of every mask must equal lane
        // k's stream draw — the coupling the equivalence suite builds
        // on, checked draw-for-draw at the kernel level.
        let tape = BatchTape::new(block_seed, FAULT_STREAM);
        let bern = BatchBernoulli::new(p);
        for &site in &sites {
            let mask = bern.mask(&tape, site, !0u64);
            let fair = tape.fair_mask(site);
            for lane in 0..LANES as u32 {
                prop_assert_eq!(mask >> lane & 1 == 1, bern.lane(&tape, site, lane));
                prop_assert_eq!(fair >> lane & 1 == 1, tape.fair_lane(site, lane));
            }
        }
    }

    #[test]
    fn batch_flood_lanes_are_monotone_per_round(
        g in connected_graph(),
        p in 0.0f64..0.95,
        block_seed in any::<u64>(),
        tree in any::<bool>(),
    ) {
        let variant = if tree {
            FastFloodVariant::Tree
        } else {
            FastFloodVariant::Graph
        };
        let ff = FastFlood::new(CsrGraph::from(&g), g.node(0), 4 * g.node_count() + 40, variant);
        let batch = ff.run_batch(p, block_seed);
        for lane in [0u32, 1, 17, 40, 63] {
            let out = batch.lane_outcome(lane);
            let counts = out.informed_by_round();
            prop_assert_eq!(counts[0], 1);
            prop_assert!(counts.windows(2).all(|w| w[0] <= w[1]), "lane {}", lane);
            prop_assert_eq!(*counts.last().unwrap(), batch.informed_count(lane));
        }
    }

    #[test]
    fn batch_popcounts_equal_scalar_lane_count_sums(
        g in connected_graph(),
        p in 0.0f64..0.95,
        block_seed in any::<u64>(),
    ) {
        // The batched per-node lane words aggregate by popcount: the
        // informed total over all 64 lanes must equal the sum of the 64
        // independent scalar lane replays, for every engine.
        let csr = CsrGraph::from(&g);
        let src = g.node(0);
        let ff = FastFlood::new(csr.clone(), src, 2 * g.node_count() + 20, FastFloodVariant::Graph);
        let fb = ff.run_batch(p, block_seed);
        let batched: usize = (0..LANES as u32).map(|l| fb.informed_count(l)).sum();
        let scalar: usize = (0..LANES as u32)
            .map(|l| ff.run_lane(p, block_seed, l).informed_count())
            .sum();
        prop_assert_eq!(batched, scalar, "flood");
        let fr = FastRadio::new(csr.clone(), src, 8 * g.node_count() + 30, FastRadioSchedule::Decay { epoch_len: 4 });
        let rb = fr.run_batch(p, block_seed);
        let batched: usize = (0..LANES as u32).map(|l| rb.informed_count(l)).sum();
        let scalar: usize = (0..LANES as u32)
            .map(|l| fr.run_lane(p, block_seed, l).informed_count())
            .sum();
        prop_assert_eq!(batched, scalar, "radio");
        let fs = FastSimple::new(&csr, src, 2);
        let sb = fs.run_batch(p, block_seed);
        let batched: usize = (0..LANES as u32).map(|l| sb.correct_count(l)).sum();
        let scalar: usize = (0..LANES as u32)
            .map(|l| fs.run_lane(p, block_seed, l).correct_count())
            .sum();
        prop_assert_eq!(batched, scalar, "simple");
    }

    #[test]
    fn batch_early_stop_never_changes_outcomes(
        g in connected_graph(),
        p in 0.0f64..0.95,
        block_seed in any::<u64>(),
    ) {
        // Per-lane early-stop (and the global break once every lane is
        // done) must be outcome-neutral: a lane that completes within a
        // short horizon reports identical metrics under a horizon three
        // times as long, because coin sites are addressed by (round,
        // node), never by horizon or by which lanes are still live.
        let csr = CsrGraph::from(&g);
        let src = g.node(0);
        let h = 2 * g.node_count() + 20;
        let short = FastFlood::new(csr.clone(), src, h, FastFloodVariant::Graph).run_batch(p, block_seed);
        let long = FastFlood::new(csr.clone(), src, 3 * h, FastFloodVariant::Graph).run_batch(p, block_seed);
        for lane in 0..LANES as u32 {
            if short.completion_round(lane).is_some() {
                prop_assert_eq!(short.completion_round(lane), long.completion_round(lane));
                prop_assert_eq!(short.almost_complete_round(lane), long.almost_complete_round(lane));
                prop_assert_eq!(short.informed_count(lane), long.informed_count(lane));
            }
        }
        let hr = 6 * g.node_count() + 24;
        let schedule = FastRadioSchedule::Decay { epoch_len: 4 };
        let short = FastRadio::new(csr.clone(), src, hr, schedule).run_batch(p, block_seed);
        let long = FastRadio::new(csr, src, 3 * hr, schedule).run_batch(p, block_seed);
        for lane in 0..LANES as u32 {
            if short.completion_round(lane).is_some() {
                prop_assert_eq!(short.completion_round(lane), long.completion_round(lane));
                prop_assert_eq!(short.almost_complete_round(lane), long.almost_complete_round(lane));
                prop_assert_eq!(short.informed_count(lane), long.informed_count(lane));
            }
        }
    }
}
