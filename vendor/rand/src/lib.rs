//! Offline, vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the workspace vendors the narrow slice of `rand`
//! it actually uses: [`Rng`] (`gen`, `gen_bool`, `gen_range`),
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] (xoshiro256++),
//! and [`seq::SliceRandom::shuffle`].
//!
//! Streams are deterministic functions of the seed, which is all the
//! simulators require; no attempt is made to be bit-compatible with the
//! real crate's output.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that supports single-value uniform sampling.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Seedable deterministic generators (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64_next(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Distributions (only [`Standard`](distributions::Standard) is provided).
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over all values for integers
    /// and `bool`, uniform in `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++), mirroring
    /// `rand::rngs::SmallRng` from the real crate.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    /// Alias kept for API compatibility; the stub uses one generator for
    /// both roles.
    pub type StdRng = SmallRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }
    }

    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        (rng.next_u64() % bound as u64) as usize
    }
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&y));
            let z: u64 = rng.gen_range(10..=10);
            assert_eq!(z, 10);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
