//! Offline, vendored stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no crates-registry access, so this crate
//! reimplements the subset of the proptest 1.x API used by the randcast
//! property suites: the [`proptest!`] macro, `prop_assert*` /
//! [`prop_assume!`] / [`prop_oneof!`], [`Strategy`](strategy::Strategy)
//! with `prop_map` / `prop_recursive` / `boxed`, range and tuple
//! strategies, [`any`](strategy::any), and
//! [`collection::vec`](collection::vec).
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message;
//!   inputs are reported unshrunk via the case counter.
//! * **Deterministic seeding.** Every test derives its RNG seed from the
//!   test's fully-qualified name, so runs are reproducible and CI-stable
//!   (this also satisfies the workspace's "pin proptest seeds" policy).

#![forbid(unsafe_code)]

/// Test-runner plumbing: config, RNG, and case outcomes.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not succeed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG used to generate test cases.
    #[derive(Clone, Debug)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seed from a test's fully-qualified name (FNV-1a), so every
        /// test has its own fixed, reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Strategies: composable recipes for generating test inputs.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Build recursive values: `recurse` receives a strategy for the
        /// previous depth level and returns a strategy one level deeper.
        /// `_desired_size` and `_branch_size` are accepted for API
        /// compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                // Mix in the base so expected size stays bounded.
                current = Union::new(vec![base.clone(), deeper]).boxed();
            }
            current
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among several strategies of the same value type
    /// (what [`prop_oneof!`](crate::prop_oneof) builds).
    #[derive(Clone)]
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given variants (must be non-empty).
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !variants.is_empty(),
                "prop_oneof! needs at least one variant"
            );
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.variants.len());
            self.variants[idx].generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Values of `T` drawn from its "any" distribution.
    pub struct ArbitraryAny<T>(PhantomData<T>);

    impl<T> Clone for ArbitraryAny<T> {
        fn clone(&self) -> Self {
            ArbitraryAny(PhantomData)
        }
    }

    /// Strategy for an arbitrary value of `T` (integers: full range;
    /// floats: unit interval; bool: fair coin).
    pub fn any<T>() -> ArbitraryAny<T>
    where
        rand::distributions::Standard: rand::distributions::Distribution<T>,
    {
        ArbitraryAny(PhantomData)
    }

    impl<T> Strategy for ArbitraryAny<T>
    where
        rand::distributions::Standard: rand::distributions::Distribution<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skip the current case unless `cond` holds (does not count toward the
/// configured case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies (all must share one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` against `config.cases` generated
/// inputs from a per-test deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ($($strategy,)+);
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(16).max(1024) {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} required)",
                            stringify!($name), accepted, config.cases,
                        );
                    }
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed on case {}: {}",
                            stringify!($name), accepted + 1, msg,
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges_respect_bounds");
        for _ in 0..500 {
            let x = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let y = Strategy::generate(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&y));
            let z = Strategy::generate(&(0usize..=4), &mut rng);
            assert!(z <= 4);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::from_name("prop_map_and_tuples_compose");
        let strat = (1usize..5, 1usize..5).prop_map(|(a, b)| a * b);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..25).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_variant() {
        let mut rng = TestRng::from_name("union_draws_every_variant");
        let strat = prop_oneof![Just(1usize), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng)] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Expr {
            Leaf(u32),
            Pair(Box<Expr>, Box<Expr>),
        }
        fn depth(e: &Expr) -> usize {
            match e {
                Expr::Leaf(v) => usize::from(*v < u32::MAX),
                Expr::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u32..10)
            .prop_map(Expr::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Expr::Pair(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::from_name("recursive_strategies_terminate");
        for _ in 0..200 {
            let e = Strategy::generate(&strat, &mut rng);
            assert!(depth(&e) <= 4, "depth bound violated: {e:?}");
        }
    }

    #[test]
    fn named_rngs_are_deterministic() {
        use rand::RngCore as _;
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let (av, bv, cv) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0usize..100, flag in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(x, x);
            if flag {
                prop_assert_ne!(x, 100);
            }
        }
    }
}
