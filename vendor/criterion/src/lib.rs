//! Offline, vendored stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Provides the API shape the workspace benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple wall-clock timer instead of criterion's statistical engine.
//! Benches compile and run under `cargo bench`, printing a mean
//! time-per-iteration line per benchmark; there are no HTML reports,
//! outlier analysis, or regression baselines.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id();
        run_one(&label, self.sample_size, None, f);
        self
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut label = function_name.into();
        let _ = write!(label, "/{parameter}");
        BenchmarkId { label }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Render to the display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used to derive per-unit rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a closure parameterised by an input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.criterion.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (report separator; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    iters: u64,
    elapsed_nanos: u128,
}

impl Bencher {
    /// Time `routine`, once per configured sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warmup call outside the timed region.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_nanos = start.elapsed().as_nanos();
    }
}

fn run_one<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed_nanos: 0,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed_nanos as f64 / bencher.iters.max(1) as f64;
    let mut line = format!("{label:<50} {:>14.1} ns/iter", per_iter);
    if let Some(tp) = throughput {
        let (units, what) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if per_iter > 0.0 {
            let rate = units as f64 / (per_iter / 1e9);
            let _ = write!(line, "  ({rate:>12.0} {what}/s)");
        }
    }
    println!("{line}");
}

/// Declare a group of benchmark functions, with optional shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warmup + 3 timed iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_run_every_registered_bench() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut hits = 0u32;
        group.throughput(Throughput::Elements(10));
        group.bench_function("a", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::new("b", 7), &7usize, |b, &x| {
            b.iter(|| hits += x as u32)
        });
        group.finish();
        assert!(hits > 0);
    }
}
