//! # randcast — broadcasting with random transmission failures
//!
//! A full reproduction of Pelc & Peleg, *"Feasibility and complexity of
//! broadcasting with random transmission failures"* (PODC 2005 extended
//! abstract; Theoretical Computer Science 370 (2007) 279–292), as a Rust
//! library: synchronous message-passing and radio network simulators with
//! per-step probabilistic transmitter faults, the paper's broadcast
//! algorithms, its worst-case adversaries, and a benchmark harness
//! regenerating each of its results.
//!
//! This crate is a facade over the workspace:
//!
//! * [`graph`] ([`randcast_graph`]) — graphs, generators (including the
//!   Theorem 3.3 lower-bound construction), BFS trees.
//! * [`engine`] ([`randcast_engine`]) — the two synchronous communication
//!   models with omission / limited-malicious / malicious transmitter
//!   faults and adaptive adversaries.
//! * [`core`] ([`randcast_core`]) — the algorithms: `Simple-Omission`,
//!   `Simple-Malicious`, BFS-tree flooding (`Θ(D + log n)`), Kučera
//!   composition broadcasting (`O(D + log^α n)`), fault-free radio
//!   scheduling, `Omission-Radio` / `Malicious-Radio` (`O(opt · log n)`),
//!   feasibility thresholds, and the `G(m)` hit-count analysis.
//! * [`stats`] ([`randcast_stats`]) — Monte-Carlo harness, Wilson
//!   intervals, Chernoff parameter formulas.
//!
//! # Quickstart
//!
//! ```
//! use randcast::prelude::*;
//!
//! // A 5×5 sensor grid with a lossy transmitter at every node (p = 0.3).
//! let g = generators::grid(5, 5);
//! let source = g.node(0);
//!
//! // Theorem 3.1: flood along the BFS tree for O(D + log n) rounds.
//! let plan = FloodPlan::new(&g, source, 0.3);
//! let outcome = plan.run(&g, FaultConfig::omission(0.3), 42);
//! assert!(outcome.complete());
//!
//! // Theorem 2.4 feasibility check before trusting a radio protocol:
//! let p_star = radio_threshold(g.max_degree());
//! assert!(0.05 < p_star);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! experiment binaries that regenerate the paper's results (E1–E10 in
//! `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use randcast_core as core;
pub use randcast_engine as engine;
pub use randcast_graph as graph;
pub use randcast_stats as stats;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use randcast_core::datalink::{run_hello, run_two_node_majority};
    pub use randcast_core::decay::{run_decay, DecayConfig, DecayOutcome};
    pub use randcast_core::feasibility::{
        malicious_mp_feasible, malicious_radio_feasible, omission_feasible, radio_threshold,
    };
    pub use randcast_core::flood::{theorem_horizon, FloodPlan, FloodVariant};
    pub use randcast_core::gossip::{GossipOutcome, GossipPlan};
    pub use randcast_core::kucera::{FailureBehavior, KuceraBroadcast, Plan as KuceraPlan};
    pub use randcast_core::lower_bound::LayerSchedule;
    pub use randcast_core::radio_robust::ExpandedPlan;
    pub use randcast_core::radio_sched::{greedy_schedule, path_schedule, RadioSchedule};
    pub use randcast_core::scenario::{
        Algorithm, GraphFamily, Model, Scenario, ScenarioError, FLOOD_FAST_MIN_N, RADIO_FAST_MIN_N,
    };
    pub use randcast_core::selftimed::{SelfTimedMode, SelfTimedPlan};
    pub use randcast_core::simple::{BroadcastOutcome, SimplePlan, VoteMode};
    pub use randcast_engine::adversary::{
        AntiTruthMpAdversary, FlipMpAdversary, FlipRadioAdversary, JamRadioAdversary,
        LieOrJamAdversary, RandomBitMpAdversary, Throttled,
    };
    pub use randcast_engine::fault::{FailureProb, FaultConfig, FaultKind};
    pub use randcast_engine::flood_fast::{FastFlood, FastFloodOutcome, FastFloodVariant};
    pub use randcast_engine::mp::{MpNetwork, MpNode, Outgoing, SilentMpAdversary};
    pub use randcast_engine::radio::{RadioAction, RadioNetwork, RadioNode, SilentRadioAdversary};
    pub use randcast_engine::radio_fast::{FastRadio, FastRadioOutcome, FastRadioSchedule};
    pub use randcast_engine::trace::{TraceEvent, TraceLog, Traced};
    pub use randcast_graph::{generators, traversal, Graph, GraphBuilder, NodeId, SpanningTree};
    pub use randcast_stats::estimate::{SuccessEstimate, Verdict};
    pub use randcast_stats::quantile::{quantile, QuantileSummary};
    pub use randcast_stats::seed::SeedSequence;
}
